//! Basis factorizations for the revised simplex.
//!
//! The revised engine never forms `B⁻¹` explicitly: every iteration needs
//! `B⁻¹ x` (FTRAN) and `B⁻ᵀ x` (BTRAN) against the current basis matrix,
//! plus a cheap *update* when one basis column is exchanged by a pivot. The
//! [`BasisFactorization`] trait captures exactly that contract, and the
//! crate ships two implementations:
//!
//! * [`EtaBasis`] — the historical product-form engine: a file of elementary
//!   Gauss–Jordan *eta* transforms rebuilt by triangularization-ordered
//!   elimination, with one eta appended per pivot. Simple and robust, but
//!   per-pivot FTRAN/BTRAN cost grows with the eta-file length between
//!   refactorizations. Selectable with `PM_LP_BASIS=eta`; kept as the
//!   differential oracle for the LU engine.
//! * [`LuBasis`] — the default: a proper sparse LU factorization
//!   (Markowitz-ordered right-looking elimination with threshold partial
//!   pivoting) updated by Forrest–Tomlin pivot updates. A pivot replaces one
//!   column of `U` with the update *spike* and restores triangularity with a
//!   single sparse row transform, so per-pivot FTRAN/BTRAN cost stays
//!   proportional to the (bounded) `L`/`U` fill instead of scaling with the
//!   number of updates performed.
//!
//! Both implementations maintain the same external invariant the engine
//! relies on: after [`BasisFactorization::refactorize`], basis slot `r`
//! holds the column whose pivot landed on row `r`, so the FTRANed
//! representation of a column is indexed by constraint row exactly like the
//! right-hand side.

use crate::sparse::CscMatrix;

/// Entries smaller than this are dropped from stored factor vectors.
const DROP_TOL: f64 = 1e-12;

/// A pivot element below this magnitude (relative to its column) makes a
/// factorization step singular.
const SINGULAR_TOL: f64 = 1e-10;

/// Threshold partial pivoting: an LU pivot candidate must be at least this
/// fraction of the largest magnitude in its column.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// An LP basis factorization: triangular solves against the basis matrix
/// plus rank-one pivot updates.
///
/// The engine guarantees the call discipline the implementations rely on:
///
/// 1. [`refactorize`](BasisFactorization::refactorize) installs a basis (and
///    may permute the slot order of `basis` so slot `r` pivots on row `r`).
/// 2. [`ftran_sparse`](BasisFactorization::ftran_sparse) computes
///    `B⁻¹ a_q` for a candidate entering column; `touched` lists every index
///    whose value may be nonzero (deduplicated through `stamp`/`epoch`).
/// 3. [`update`](BasisFactorization::update) is only ever called with the
///    pivot row chosen from the **most recent** `ftran_sparse` result — the
///    LU implementation stashes the partial (pre-`U`) solve as the
///    Forrest–Tomlin spike between the two calls.
pub trait BasisFactorization {
    /// Rebuilds the factorization from scratch for the given basis columns
    /// of `a`. May permute `basis` (slot `r` ends up holding the column
    /// whose pivot row is `r`). Returns `false` when the basis is singular.
    fn refactorize(&mut self, a: &CscMatrix, basis: &mut [usize]) -> bool;

    /// Dense FTRAN: computes `B⁻¹ x` in place.
    fn ftran(&self, x: &mut [f64]);

    /// Dense BTRAN: computes `B⁻ᵀ x` in place.
    fn btran(&self, x: &mut [f64]);

    /// Sparsity-exploiting FTRAN: the caller seeds `x` with the input
    /// column and `touched` with its nonzero pattern; the implementation
    /// maintains the invariant that every index whose value may be nonzero
    /// is listed in `touched` (deduplicated through the `stamp`/`epoch`
    /// markers).
    fn ftran_sparse(
        &mut self,
        x: &mut [f64],
        touched: &mut Vec<u32>,
        stamp: &mut [u32],
        epoch: u32,
    );

    /// Applies the basis exchange of a pivot on `row`, with `w` holding the
    /// most recent [`ftran_sparse`](BasisFactorization::ftran_sparse) result
    /// (pattern in `touched`). Returns `false` when the update is
    /// numerically untrustworthy — the caller must refactorize.
    fn update(&mut self, row: usize, w: &[f64], touched: &[u32]) -> bool;

    /// Pivot updates applied since the last refactorization.
    fn updates_since_refactor(&self) -> usize;

    /// Whether accumulated fill warrants an early refactorization (the
    /// engine also refactorizes on a fixed update-count schedule).
    fn wants_refactor(&self, a: &CscMatrix) -> bool;
}

// ---------------------------------------------------------------------------
// Product-form (eta file) basis
// ---------------------------------------------------------------------------

/// The eta file: elementary Gauss–Jordan transforms stored in flat arrays.
///
/// Eta `k` maps `x` to `G_k x` with `(G_k x)_r = x_r / p_k` and
/// `(G_k x)_i = x_i − w_i · (x_r / p_k)` for the off-pivot entries
/// `(i, w_i)`; `r` is the pivot row and `p_k` the pivot element.
#[derive(Debug, Default)]
struct EtaFile {
    pivot_row: Vec<u32>,
    pivot_val: Vec<f64>,
    starts: Vec<usize>,
    idx: Vec<u32>,
    val: Vec<f64>,
}

impl EtaFile {
    fn clear(&mut self) {
        self.pivot_row.clear();
        self.pivot_val.clear();
        self.starts.clear();
        self.starts.push(0);
        self.idx.clear();
        self.val.clear();
    }

    fn len(&self) -> usize {
        self.pivot_row.len()
    }

    fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Appends the eta of a pivot on `row`: `w` is the FTRANed column held
    /// in a dense scratch vector whose (potential) nonzeros are listed in
    /// `touched`.
    fn push_sparse(&mut self, row: usize, w: &[f64], touched: &[u32]) {
        self.pivot_row.push(row as u32);
        self.pivot_val.push(w[row]);
        for &i in touched {
            let v = w[i as usize];
            if i as usize != row && v.abs() > DROP_TOL {
                self.idx.push(i);
                self.val.push(v);
            }
        }
        self.starts.push(self.idx.len());
    }

    /// FTRAN: applies `G_k ··· G_1` in order, i.e. computes `B⁻¹ x` in
    /// place.
    fn ftran(&self, x: &mut [f64]) {
        for k in 0..self.len() {
            let r = self.pivot_row[k] as usize;
            let t = x[r] / self.pivot_val[k];
            x[r] = t;
            if t != 0.0 {
                for e in self.starts[k]..self.starts[k + 1] {
                    x[self.idx[e] as usize] -= self.val[e] * t;
                }
            }
        }
    }

    /// Sparsity-exploiting FTRAN: like [`EtaFile::ftran`], but maintains the
    /// `touched` invariant of [`BasisFactorization::ftran_sparse`]. Etas
    /// whose pivot row is untouched are skipped entirely, so the cost is
    /// proportional to the fill actually created rather than to `m` or to
    /// the eta-file size.
    fn ftran_sparse(&self, x: &mut [f64], touched: &mut Vec<u32>, stamp: &mut [u32], epoch: u32) {
        for k in 0..self.len() {
            let r = self.pivot_row[k] as usize;
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let t = xr / self.pivot_val[k];
            x[r] = t;
            for e in self.starts[k]..self.starts[k + 1] {
                let i = self.idx[e];
                if stamp[i as usize] != epoch {
                    stamp[i as usize] = epoch;
                    touched.push(i);
                }
                x[i as usize] -= self.val[e] * t;
            }
        }
    }

    /// BTRAN: applies the transposes in reverse order, i.e. computes
    /// `B⁻ᵀ x` in place. Only the pivot-row component changes per eta.
    fn btran(&self, x: &mut [f64]) {
        for k in (0..self.len()).rev() {
            let r = self.pivot_row[k] as usize;
            let mut s = x[r];
            for e in self.starts[k]..self.starts[k + 1] {
                s -= self.val[e] * x[self.idx[e] as usize];
            }
            x[r] = s / self.pivot_val[k];
        }
    }
}

/// The product-form basis: an eta file rebuilt by Gauss–Jordan elimination
/// over the basic columns, one eta appended per pivot (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct EtaBasis {
    etas: EtaFile,
    updates: usize,
    /// Scratch for refactorization (the engine's scratch is busy with the
    /// entering column while a refactorization runs inside a pivot loop).
    work: Vec<f64>,
    touched: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl EtaBasis {
    /// An empty factorization (callers must `refactorize` before solving).
    pub fn new() -> Self {
        let mut basis = EtaBasis::default();
        basis.etas.clear();
        basis
    }

    /// FTRAN of column `j` of `a` into the internal scratch, tracking its
    /// nonzero pattern.
    fn ftran_col_scratch(&mut self, a: &CscMatrix, j: usize) {
        let m = a.rows();
        if self.work.len() < m {
            self.work = vec![0.0; m];
            self.stamp = vec![0; m];
            self.epoch = 0;
            self.touched.clear();
        }
        for &i in &self.touched {
            self.work[i as usize] = 0.0;
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        let (rows, vals) = a.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            self.stamp[r as usize] = self.epoch;
            self.touched.push(r);
            self.work[r as usize] = v;
        }
        let (work, touched, stamp) = (&mut self.work, &mut self.touched, &mut self.stamp);
        self.etas.ftran_sparse(work, touched, stamp, self.epoch);
    }
}

impl BasisFactorization for EtaBasis {
    /// Rebuilds the eta file for the basis by Gauss–Jordan elimination,
    /// pivoting columns in increasing-nonzero-count order (the
    /// triangularization heuristic) with partial pivoting over the rows not
    /// yet eliminated.
    fn refactorize(&mut self, a: &CscMatrix, basis: &mut [usize]) -> bool {
        self.etas.clear();
        self.updates = 0;
        let m = a.rows();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&r| a.col_nnz(basis[r]));
        let mut pivoted = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        for &pos in &order {
            let j = basis[pos];
            self.ftran_col_scratch(a, j);
            // Partial pivoting over the rows not yet assigned; only touched
            // entries can be nonzero.
            let mut best_row = usize::MAX;
            let mut best_abs = 0.0;
            for &i in &self.touched {
                let r = i as usize;
                let w = self.work[r].abs();
                if !pivoted[r] && w > best_abs {
                    best_abs = w;
                    best_row = r;
                }
            }
            if best_abs <= SINGULAR_TOL {
                return false;
            }
            self.etas.push_sparse(best_row, &self.work, &self.touched);
            pivoted[best_row] = true;
            new_basis[best_row] = j;
        }
        basis.copy_from_slice(&new_basis);
        true
    }

    fn ftran(&self, x: &mut [f64]) {
        self.etas.ftran(x);
    }

    fn btran(&self, x: &mut [f64]) {
        self.etas.btran(x);
    }

    fn ftran_sparse(
        &mut self,
        x: &mut [f64],
        touched: &mut Vec<u32>,
        stamp: &mut [u32],
        epoch: u32,
    ) {
        self.etas.ftran_sparse(x, touched, stamp, epoch);
    }

    fn update(&mut self, row: usize, w: &[f64], touched: &[u32]) -> bool {
        self.etas.push_sparse(row, w, touched);
        self.updates += 1;
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.updates
    }

    fn wants_refactor(&self, a: &CscMatrix) -> bool {
        self.etas.nnz() > 4 * a.nnz() + 16 * a.rows()
    }
}

// ---------------------------------------------------------------------------
// Sparse LU with Forrest–Tomlin updates
// ---------------------------------------------------------------------------

/// One elementary transform on the `L` side of the factorization.
///
/// * `Col` ops come from the Gaussian elimination of the factorization:
///   FTRAN applies `x_i -= l_i · x_pivot` for every entry `(i, l_i)`.
/// * `Row` ops come from Forrest–Tomlin updates: FTRAN applies
///   `x_pivot -= Σ f_k · x_k` over the entries `(k, f_k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LOpKind {
    Col,
    Row,
}

/// The default basis engine: sparse LU (`B = L·U` under row/column
/// permutations) built by Markowitz-ordered right-looking elimination with
/// threshold partial pivoting, updated in place by Forrest–Tomlin pivot
/// updates (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct LuBasis {
    m: usize,
    // L side: elementary transforms in application order (factorization
    // column ops followed by update row ops), stored in flat arrays.
    op_kind: Vec<LOpKind>,
    op_pivot: Vec<u32>,
    op_start: Vec<usize>,
    op_idx: Vec<u32>,
    op_val: Vec<f64>,
    /// `U` columns keyed by pivot row: `ucol[r]` holds the off-diagonal
    /// entries `(row, value)` of the column whose pivot row is `r`; every
    /// entry's row has a strictly earlier pivot position than `r`.
    ucol: Vec<Vec<(u32, f64)>>,
    /// Diagonal (pivot) element of the column keyed by pivot row `r`.
    udiag: Vec<f64>,
    /// Pivot order: `row_of_pos[p]` is the pivot row at position `p`.
    row_of_pos: Vec<u32>,
    /// Inverse of `row_of_pos`.
    pos_of_row: Vec<u32>,
    /// Lazy row index of `U`: `urows[r]` lists column keys that may contain
    /// an entry at row `r` (entries can be stale after column replacements;
    /// consumers re-validate against `ucol`).
    urows: Vec<Vec<u32>>,
    /// The Forrest–Tomlin spike of the most recent `ftran_sparse`: the
    /// partial solve `L⁻¹ a_q` captured between the `L` ops and the `U`
    /// back-substitution.
    spike_rows: Vec<u32>,
    spike_vals: Vec<f64>,
    updates: usize,
    /// Stored nonzeros of `U` (diagonals included), tracked across updates.
    unnz: usize,
    // Scratch (factorization + update).
    scratch: Vec<f64>,
    scratch_stamp: Vec<u32>,
    scratch_epoch: u32,
}

impl LuBasis {
    /// An empty factorization (callers must `refactorize` before solving).
    pub fn new() -> Self {
        LuBasis::default()
    }

    fn reset(&mut self, m: usize) {
        self.m = m;
        self.op_kind.clear();
        self.op_pivot.clear();
        self.op_start.clear();
        self.op_start.push(0);
        self.op_idx.clear();
        self.op_val.clear();
        self.ucol.clear();
        self.ucol.resize(m, Vec::new());
        self.udiag.clear();
        self.udiag.resize(m, 0.0);
        self.row_of_pos.clear();
        self.row_of_pos.resize(m, 0);
        self.pos_of_row.clear();
        self.pos_of_row.resize(m, 0);
        self.urows.clear();
        self.urows.resize(m, Vec::new());
        self.spike_rows.clear();
        self.spike_vals.clear();
        self.updates = 0;
        self.unnz = 0;
        if self.scratch.len() < m {
            self.scratch = vec![0.0; m];
            self.scratch_stamp = vec![0; m];
            self.scratch_epoch = 0;
        }
    }

    /// Resets to the exact factorization of the `m × m` identity (unit
    /// diagonal, natural pivot order, no `L` ops). The engines start from
    /// the all-slack/artificial basis, which is the identity, so this lets
    /// Forrest–Tomlin updates run before any explicit refactorization.
    fn reset_identity(&mut self, m: usize) {
        self.reset(m);
        for p in 0..m {
            self.row_of_pos[p] = p as u32;
            self.pos_of_row[p] = p as u32;
            self.udiag[p] = 1.0;
        }
        self.unnz = m;
    }

    fn push_op(&mut self, kind: LOpKind, pivot: u32, entries: impl Iterator<Item = (u32, f64)>) {
        self.op_kind.push(kind);
        self.op_pivot.push(pivot);
        for (i, v) in entries {
            if v.abs() > DROP_TOL {
                self.op_idx.push(i);
                self.op_val.push(v);
            }
        }
        self.op_start.push(self.op_idx.len());
    }

    /// Applies the `L` ops in order (dense).
    fn apply_l(&self, x: &mut [f64]) {
        for k in 0..self.op_kind.len() {
            let p = self.op_pivot[k] as usize;
            let (lo, hi) = (self.op_start[k], self.op_start[k + 1]);
            match self.op_kind[k] {
                LOpKind::Col => {
                    let t = x[p];
                    if t != 0.0 {
                        for e in lo..hi {
                            x[self.op_idx[e] as usize] -= self.op_val[e] * t;
                        }
                    }
                }
                LOpKind::Row => {
                    let mut s = 0.0;
                    for e in lo..hi {
                        s += self.op_val[e] * x[self.op_idx[e] as usize];
                    }
                    x[p] -= s;
                }
            }
        }
    }

    /// Applies the transposed `L` ops in reverse order (dense).
    fn apply_l_transpose(&self, x: &mut [f64]) {
        for k in (0..self.op_kind.len()).rev() {
            let p = self.op_pivot[k] as usize;
            let (lo, hi) = (self.op_start[k], self.op_start[k + 1]);
            match self.op_kind[k] {
                LOpKind::Col => {
                    let mut s = x[p];
                    for e in lo..hi {
                        s -= self.op_val[e] * x[self.op_idx[e] as usize];
                    }
                    x[p] = s;
                }
                LOpKind::Row => {
                    let t = x[p];
                    if t != 0.0 {
                        for e in lo..hi {
                            x[self.op_idx[e] as usize] -= self.op_val[e] * t;
                        }
                    }
                }
            }
        }
    }

    /// Back-substitution `U x' = x` in place (dense): positions descending,
    /// scatter-style, so only positions with a nonzero right-hand side cost
    /// anything beyond the flat scan.
    fn u_solve(&self, x: &mut [f64]) {
        for p in (0..self.m).rev() {
            let r = self.row_of_pos[p] as usize;
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let t = xr / self.udiag[r];
            x[r] = t;
            for &(i, v) in &self.ucol[r] {
                x[i as usize] -= v * t;
            }
        }
    }

    /// Forward substitution `Uᵀ x' = x` in place (positions ascending,
    /// gather-style).
    fn ut_solve(&self, x: &mut [f64]) {
        for p in 0..self.m {
            let r = self.row_of_pos[p] as usize;
            let mut s = x[r];
            for &(i, v) in &self.ucol[r] {
                s -= v * x[i as usize];
            }
            x[r] = s / self.udiag[r];
        }
    }

    fn bump_scratch_epoch(&mut self) -> u32 {
        self.scratch_epoch = self.scratch_epoch.wrapping_add(1);
        if self.scratch_epoch == 0 {
            self.scratch_stamp.iter_mut().for_each(|s| *s = 0);
            self.scratch_epoch = 1;
        }
        self.scratch_epoch
    }
}

impl BasisFactorization for LuBasis {
    /// Right-looking sparse Gaussian elimination with Markowitz-flavoured
    /// pivot selection: at each step the active column with the fewest
    /// active nonzeros is eliminated (deterministic tie-breaking through the
    /// bucket order), pivoting on the threshold-eligible row
    /// (`|v| ≥ 0.1 · max|column|`) with the fewest active nonzeros. Unit
    /// slack/artificial columns therefore pivot first with zero fill, and
    /// the network columns of the multicast LPs triangularize almost
    /// completely.
    fn refactorize(&mut self, a: &CscMatrix, basis: &mut [usize]) -> bool {
        let m = a.rows();
        self.reset(m);
        if m == 0 {
            return true;
        }

        // The active matrix: one working column per basis slot.
        let mut cols: Vec<Vec<(u32, f64)>> = basis
            .iter()
            .map(|&j| {
                let (rows, vals) = a.col(j);
                rows.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        let mut col_alive = vec![true; m];
        let mut row_alive = vec![true; m];
        let mut col_count: Vec<usize> = cols.iter().map(Vec::len).collect();
        let mut row_count = vec![0usize; m];
        let mut rowlist: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (k, col) in cols.iter().enumerate() {
            for &(r, _) in col {
                row_count[r as usize] += 1;
                rowlist[r as usize].push(k as u32);
            }
        }
        // Count buckets with lazy invalidation for min-count column lookup.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); m + 1];
        for (k, &c) in col_count.iter().enumerate() {
            buckets[c].push(k as u32);
        }
        let mut cur = 0usize;

        let saved: Vec<usize> = basis.to_vec();
        for step in 0..m {
            // Pick the live column with the smallest active count.
            let pc = loop {
                if cur > m {
                    return false;
                }
                match buckets[cur].last().copied() {
                    None => cur += 1,
                    Some(k) => {
                        let ku = k as usize;
                        if !col_alive[ku] || col_count[ku] != cur {
                            buckets[cur].pop();
                            continue;
                        }
                        break ku;
                    }
                }
            };
            buckets[cur].pop();
            col_alive[pc] = false;

            // Threshold partial pivoting inside the column: among rows with
            // |v| within MARKOWITZ_THRESHOLD of the column max, take the one
            // with the fewest active nonzeros (ties: smallest row index).
            let mut colmax = 0.0f64;
            for &(r, v) in &cols[pc] {
                if row_alive[r as usize] {
                    colmax = colmax.max(v.abs());
                }
            }
            if colmax <= SINGULAR_TOL {
                return false;
            }
            let mut pr = usize::MAX;
            let mut pr_count = usize::MAX;
            let mut d = 0.0;
            for &(r, v) in &cols[pc] {
                let ru = r as usize;
                if !row_alive[ru] || v.abs() < MARKOWITZ_THRESHOLD * colmax {
                    continue;
                }
                if row_count[ru] < pr_count || (row_count[ru] == pr_count && ru < pr) {
                    pr = ru;
                    pr_count = row_count[ru];
                    d = v;
                }
            }
            debug_assert!(pr != usize::MAX);

            // Emit the L column op (multipliers below the pivot) and the U
            // column (finalized entries at already-pivoted rows + diagonal).
            let mut lents: Vec<(u32, f64)> = Vec::new();
            let mut uents: Vec<(u32, f64)> = Vec::new();
            for &(r, v) in &cols[pc] {
                let ru = r as usize;
                if ru == pr {
                    continue;
                }
                if row_alive[ru] {
                    if v.abs() > DROP_TOL {
                        lents.push((r, v / d));
                    }
                    row_count[ru] = row_count[ru].saturating_sub(1);
                } else if v.abs() > DROP_TOL {
                    uents.push((r, v));
                }
            }
            self.unnz += uents.len() + 1;
            for &(r, _) in &uents {
                self.urows[r as usize].push(pr as u32);
            }
            self.ucol[pr] = uents;
            self.udiag[pr] = d;
            self.row_of_pos[step] = pr as u32;
            self.pos_of_row[pr] = step as u32;
            row_alive[pr] = false;
            basis[pr] = saved[pc];
            self.push_op(LOpKind::Col, pr as u32, lents.iter().copied());

            // Right-looking update of every live column containing the
            // pivot row.
            let affected = std::mem::take(&mut rowlist[pr]);
            let epoch = self.bump_scratch_epoch();
            for &ck in &affected {
                let c = ck as usize;
                if !col_alive[c] {
                    continue;
                }
                let Some(&(_, v_prc)) = cols[c].iter().find(|&&(r, _)| r as usize == pr) else {
                    continue; // stale rowlist entry
                };
                // Index the column's live entries for O(1) lookup.
                let epoch_c = epoch.wrapping_add(ck); // distinct per column
                let epoch_c = if epoch_c == 0 { 1 } else { epoch_c };
                for (slot, &(r, _)) in cols[c].iter().enumerate() {
                    self.scratch_stamp[r as usize] = epoch_c;
                    self.scratch[r as usize] = slot as f64;
                }
                let mut fills: Vec<(u32, f64)> = Vec::new();
                for &(i, l) in &lents {
                    let iu = i as usize;
                    let delta = l * v_prc;
                    if self.scratch_stamp[iu] == epoch_c {
                        let slot = self.scratch[iu] as usize;
                        cols[c][slot].1 -= delta;
                    } else if delta.abs() > DROP_TOL {
                        fills.push((i, -delta));
                    }
                }
                // The pivot-row entry leaves the active count (it is now a
                // finalized U entry of column c).
                col_count[c] = col_count[c].saturating_sub(1) + fills.len();
                for (i, v) in fills {
                    cols[c].push((i, v));
                    row_count[i as usize] += 1;
                    rowlist[i as usize].push(ck);
                }
                buckets[col_count[c]].push(ck);
                cur = cur.min(col_count[c]);
            }
            // `bump_scratch_epoch` above only advanced by one while we used
            // per-column offsets; resynchronize so later callers start clean.
            self.scratch_epoch = self.scratch_epoch.wrapping_add(m as u32);
        }
        true
    }

    fn ftran(&self, x: &mut [f64]) {
        self.apply_l(x);
        self.u_solve(x);
    }

    fn btran(&self, x: &mut [f64]) {
        self.ut_solve(x);
        self.apply_l_transpose(x);
    }

    fn ftran_sparse(
        &mut self,
        x: &mut [f64],
        touched: &mut Vec<u32>,
        stamp: &mut [u32],
        epoch: u32,
    ) {
        // L ops with touched-list maintenance.
        for k in 0..self.op_kind.len() {
            let p = self.op_pivot[k] as usize;
            let (lo, hi) = (self.op_start[k], self.op_start[k + 1]);
            match self.op_kind[k] {
                LOpKind::Col => {
                    let t = x[p];
                    if t != 0.0 {
                        for e in lo..hi {
                            let i = self.op_idx[e];
                            if stamp[i as usize] != epoch {
                                stamp[i as usize] = epoch;
                                touched.push(i);
                            }
                            x[i as usize] -= self.op_val[e] * t;
                        }
                    }
                }
                LOpKind::Row => {
                    let mut s = 0.0;
                    for e in lo..hi {
                        s += self.op_val[e] * x[self.op_idx[e] as usize];
                    }
                    if s != 0.0 {
                        if stamp[p] != epoch {
                            stamp[p] = epoch;
                            touched.push(p as u32);
                        }
                        x[p] -= s;
                    }
                }
            }
        }
        // Stash the Forrest–Tomlin spike (partial solve, before U).
        self.spike_rows.clear();
        self.spike_vals.clear();
        for &i in touched.iter() {
            let v = x[i as usize];
            if v != 0.0 {
                self.spike_rows.push(i);
                self.spike_vals.push(v);
            }
        }
        // U back-substitution with touched-list maintenance.
        for p in (0..self.m).rev() {
            let r = self.row_of_pos[p] as usize;
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let t = xr / self.udiag[r];
            x[r] = t;
            for &(i, v) in &self.ucol[r] {
                if stamp[i as usize] != epoch {
                    stamp[i as usize] = epoch;
                    touched.push(i);
                }
                x[i as usize] -= v * t;
            }
        }
    }

    /// The Forrest–Tomlin update. The spike `s = L⁻¹ a_q` stashed by the
    /// preceding `ftran_sparse` replaces the `U` column of the leaving
    /// variable (pivot row `rt`); the pivot position cycles to the end of
    /// the pivot order, and the no-longer-triangular remnants of row `rt`
    /// are eliminated by one sparse row transform appended to the `L` ops
    /// (`f` solves `fᵀ·U_JJ = (row rt of U)ᵀ` over the trailing positions).
    /// Per-update cost is therefore proportional to `U` fill, not to the
    /// number of updates performed since the last refactorization.
    fn update(&mut self, row: usize, _w: &[f64], _touched: &[u32]) -> bool {
        let rt = row;
        let t = self.pos_of_row[rt] as usize;
        let m = self.m;

        // 1. Extract (and delete) row rt of U at positions > t, keyed by
        //    column pivot row. All entries of row rt live in columns with a
        //    later pivot position by the triangularity invariant.
        let mut row_cols: Vec<u32> = Vec::new();
        let mut row_vals: Vec<f64> = Vec::new();
        let cand = std::mem::take(&mut self.urows[rt]);
        for &c in &cand {
            let cu = c as usize;
            let col = &mut self.ucol[cu];
            if let Some(slot) = col.iter().position(|&(r, _)| r as usize == rt) {
                let (_, v) = col.swap_remove(slot);
                self.unnz -= 1;
                if v != 0.0 {
                    row_cols.push(c);
                    row_vals.push(v);
                }
            }
        }

        // 2. Solve fᵀ U_JJ = rᵀ over trailing positions (ascending), f keyed
        //    by pivot row in the scratch vector.
        let epoch = self.bump_scratch_epoch();
        let mut f_rows: Vec<u32> = Vec::new();
        let mut remaining = row_cols.len();
        for (c, v) in row_cols.iter().zip(&row_vals) {
            self.scratch_stamp[*c as usize] = epoch;
            self.scratch[*c as usize] = *v;
        }
        if remaining > 0 {
            for p in (t + 1)..m {
                let c = self.row_of_pos[p] as usize;
                let mut acc = if self.scratch_stamp[c] == epoch {
                    remaining -= 1;
                    self.scratch[c]
                } else {
                    0.0
                };
                if !f_rows.is_empty() {
                    for &(i, v) in &self.ucol[c] {
                        if self.scratch_stamp[i as usize] == epoch + 1 {
                            acc -= v * self.scratch[i as usize];
                        }
                    }
                }
                if acc != 0.0 {
                    let fv = acc / self.udiag[c];
                    if fv.abs() > DROP_TOL {
                        // f entries carry epoch + 1 to stay distinct from the
                        // row-value markers.
                        self.scratch_stamp[c] = epoch + 1;
                        self.scratch[c] = fv;
                        f_rows.push(c as u32);
                    } else {
                        self.scratch_stamp[c] = 0;
                    }
                } else if self.scratch_stamp[c] == epoch {
                    self.scratch_stamp[c] = 0;
                }
                if remaining == 0 && f_rows.is_empty() {
                    break;
                }
            }
        }
        // Reserve the `epoch + 1` marker we used for f entries.
        self.scratch_epoch = self.scratch_epoch.wrapping_add(1);
        if self.scratch_epoch == 0 {
            self.scratch_stamp.iter_mut().for_each(|s| *s = 0);
            self.scratch_epoch = 1;
        }

        // 3. New diagonal of the spike column: the row transform applied to
        //    the spike's rt entry.
        let mut d_new = 0.0;
        let spike_at = |r: usize| -> f64 {
            for (i, &sr) in self.spike_rows.iter().enumerate() {
                if sr as usize == r {
                    return self.spike_vals[i];
                }
            }
            0.0
        };
        d_new += spike_at(rt);
        for &fr in &f_rows {
            let fv = self.scratch[fr as usize];
            d_new -= fv * spike_at(fr as usize);
        }
        // A vanishing transformed diagonal means the updated factorization
        // would be numerically worthless: force a refactorization instead.
        let mut spike_scale = d_new.abs();
        for v in &self.spike_vals {
            spike_scale = spike_scale.max(v.abs());
        }
        if d_new.abs() <= SINGULAR_TOL || d_new.abs() < 1e-9 * spike_scale {
            return false;
        }

        // 4. Append the row transform to the L ops.
        if !f_rows.is_empty() {
            let scratch = &self.scratch;
            let entries: Vec<(u32, f64)> =
                f_rows.iter().map(|&r| (r, scratch[r as usize])).collect();
            self.push_op(LOpKind::Row, rt as u32, entries.into_iter());
        }

        // 5. Install the spike as the (new last) column keyed by rt.
        self.unnz -= self.ucol[rt].len() + 1;
        let mut newcol: Vec<(u32, f64)> = Vec::with_capacity(self.spike_rows.len());
        for (i, &sr) in self.spike_rows.iter().enumerate() {
            let v = self.spike_vals[i];
            if sr as usize != rt && v.abs() > DROP_TOL {
                newcol.push((sr, v));
                self.urows[sr as usize].push(rt as u32);
            }
        }
        self.unnz += newcol.len() + 1;
        self.ucol[rt] = newcol;
        self.udiag[rt] = d_new;

        // 6. Cycle position t to the end.
        for p in t..m - 1 {
            let r = self.row_of_pos[p + 1];
            self.row_of_pos[p] = r;
            self.pos_of_row[r as usize] = p as u32;
        }
        self.row_of_pos[m - 1] = rt as u32;
        self.pos_of_row[rt] = (m - 1) as u32;

        self.updates += 1;
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.updates
    }

    fn wants_refactor(&self, a: &CscMatrix) -> bool {
        let budget = 4 * a.nnz() + 16 * a.rows();
        self.unnz + self.op_idx.len() > budget
    }
}

/// Either basis factorization behind one enum, so the engine avoids dynamic
/// dispatch on the per-iteration hot path.
#[derive(Debug)]
pub(crate) enum BasisRepr {
    /// Product-form eta file (`PM_LP_BASIS=eta`).
    Eta(EtaBasis),
    /// Sparse LU with Forrest–Tomlin updates (the default).
    Lu(LuBasis),
}

impl BasisRepr {
    /// A factorization of the `m × m` identity — the engines' all-slack
    /// start basis — ready for pivot updates without a prior refactorize.
    pub(crate) fn new(kind: crate::solver::BasisKind, m: usize) -> Self {
        match kind {
            crate::solver::BasisKind::Eta => BasisRepr::Eta(EtaBasis::new()),
            crate::solver::BasisKind::Lu => {
                let mut lu = LuBasis::new();
                lu.reset_identity(m);
                BasisRepr::Lu(lu)
            }
        }
    }

    pub(crate) fn kind(&self) -> crate::solver::BasisKind {
        match self {
            BasisRepr::Eta(_) => crate::solver::BasisKind::Eta,
            BasisRepr::Lu(_) => crate::solver::BasisKind::Lu,
        }
    }
}

impl BasisFactorization for BasisRepr {
    fn refactorize(&mut self, a: &CscMatrix, basis: &mut [usize]) -> bool {
        match self {
            BasisRepr::Eta(b) => b.refactorize(a, basis),
            BasisRepr::Lu(b) => b.refactorize(a, basis),
        }
    }

    fn ftran(&self, x: &mut [f64]) {
        match self {
            BasisRepr::Eta(b) => b.ftran(x),
            BasisRepr::Lu(b) => b.ftran(x),
        }
    }

    fn btran(&self, x: &mut [f64]) {
        match self {
            BasisRepr::Eta(b) => b.btran(x),
            BasisRepr::Lu(b) => b.btran(x),
        }
    }

    fn ftran_sparse(
        &mut self,
        x: &mut [f64],
        touched: &mut Vec<u32>,
        stamp: &mut [u32],
        epoch: u32,
    ) {
        match self {
            BasisRepr::Eta(b) => b.ftran_sparse(x, touched, stamp, epoch),
            BasisRepr::Lu(b) => b.ftran_sparse(x, touched, stamp, epoch),
        }
    }

    fn update(&mut self, row: usize, w: &[f64], touched: &[u32]) -> bool {
        match self {
            BasisRepr::Eta(b) => b.update(row, w, touched),
            BasisRepr::Lu(b) => b.update(row, w, touched),
        }
    }

    fn updates_since_refactor(&self) -> usize {
        match self {
            BasisRepr::Eta(b) => b.updates_since_refactor(),
            BasisRepr::Lu(b) => b.updates_since_refactor(),
        }
    }

    fn wants_refactor(&self, a: &CscMatrix) -> bool {
        match self {
            BasisRepr::Eta(b) => b.wants_refactor(a),
            BasisRepr::Lu(b) => b.wants_refactor(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small nonsingular matrix with a mix of unit and dense-ish columns,
    /// shaped like a standard-form simplex basis.
    fn sample() -> (CscMatrix, Vec<usize>) {
        // 4×6: columns 0-1 structural, 2-5 slack-like.
        let a = CscMatrix::from_triplets(
            4,
            6,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (3, 0, -1.0),
                (0, 1, 1.0),
                (2, 1, 3.0),
                (3, 1, 0.5),
                (0, 2, 1.0),
                (1, 3, 1.0),
                (2, 4, 1.0),
                (3, 5, 1.0),
            ],
        );
        (a, vec![0, 1, 4, 5])
    }

    fn dense_of_basis(a: &CscMatrix, basis: &[usize]) -> Vec<Vec<f64>> {
        let m = a.rows();
        let mut b = vec![vec![0.0; m]; m];
        for (slot, &j) in basis.iter().enumerate() {
            let (rows, vals) = a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                b[r as usize][slot] = v;
            }
        }
        b
    }

    /// Checks `B x = rhs` where `x` is indexed by pivot row (slot) as the
    /// engine's convention demands.
    fn check_ftran(a: &CscMatrix, basis: &[usize], x: &[f64], rhs: &[f64]) {
        let m = a.rows();
        let b = dense_of_basis(a, basis);
        for r in 0..m {
            let mut acc = 0.0;
            for (slot, _) in basis.iter().enumerate() {
                acc += b[r][slot] * x[slot];
            }
            assert!(
                (acc - rhs[r]).abs() < 1e-8,
                "B x != rhs at row {r}: {acc} vs {rhs:?}"
            );
        }
    }

    fn factor_kinds() -> Vec<BasisRepr> {
        vec![
            BasisRepr::Eta(EtaBasis::new()),
            BasisRepr::Lu(LuBasis::new()),
        ]
    }

    #[test]
    fn refactorize_then_ftran_solves_the_basis_system() {
        let (a, basis0) = sample();
        for mut fac in factor_kinds() {
            let mut basis = basis0.clone();
            assert!(fac.refactorize(&a, &mut basis));
            // Both impls permute so slot r pivots on row r: solving against
            // the permuted basis must reproduce the RHS.
            let rhs = [1.0, 2.0, -1.0, 0.5];
            let mut x = rhs.to_vec();
            fac.ftran(&mut x);
            check_ftran(&a, &basis, &x, &rhs);
        }
    }

    #[test]
    fn btran_matches_transpose_solve() {
        let (a, basis0) = sample();
        for mut fac in factor_kinds() {
            let mut basis = basis0.clone();
            assert!(fac.refactorize(&a, &mut basis));
            let c = [1.0, -2.0, 0.0, 3.0];
            let mut y = c.to_vec();
            fac.btran(&mut y);
            // Check Bᵀ y = c, i.e. for every slot: column_slot · y = c_slot.
            let b = dense_of_basis(&a, &basis);
            for slot in 0..basis.len() {
                let mut acc = 0.0;
                for (r, row) in b.iter().enumerate() {
                    acc += row[slot] * y[r];
                }
                assert!((acc - c[slot]).abs() < 1e-8, "Bᵀ y != c at slot {slot}");
            }
        }
    }

    #[test]
    fn updates_track_the_exchanged_column() {
        let (a, basis0) = sample();
        for mut fac in factor_kinds() {
            let mut basis = basis0.clone();
            assert!(fac.refactorize(&a, &mut basis));
            // Bring column 2 (a slack) into whichever slot its FTRAN pivots
            // best on; emulate the engine's pivot loop.
            let m = a.rows();
            let mut work = vec![0.0; m];
            let mut touched: Vec<u32> = Vec::new();
            let mut stamp = vec![0u32; m];
            let entering = 2usize;
            let (rows, vals) = a.col(entering);
            for (&r, &v) in rows.iter().zip(vals) {
                stamp[r as usize] = 1;
                touched.push(r);
                work[r as usize] = v;
            }
            fac.ftran_sparse(&mut work, &mut touched, &mut stamp, 1);
            // Pick any row with a sizable pivot that holds a structural
            // column we can evict.
            let row = (0..m)
                .filter(|&r| work[r].abs() > 1e-9)
                .max_by(|&x, &y| work[x].abs().partial_cmp(&work[y].abs()).unwrap())
                .unwrap();
            assert!(fac.update(row, &work, &touched));
            basis[row] = entering;
            assert_eq!(fac.updates_since_refactor(), 1);
            // The updated factorization must solve against the new basis.
            let rhs = [0.5, 1.5, -2.0, 1.0];
            let mut x = rhs.to_vec();
            fac.ftran(&mut x);
            check_ftran(&a, &basis, &x, &rhs);
            // And BTRAN stays consistent too.
            let c = [2.0, 0.0, 1.0, -1.0];
            let mut y = c.to_vec();
            fac.btran(&mut y);
            let b = dense_of_basis(&a, &basis);
            for slot in 0..basis.len() {
                let mut acc = 0.0;
                for (r, rowv) in b.iter().enumerate() {
                    acc += rowv[slot] * y[r];
                }
                assert!((acc - c[slot]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn chained_updates_stay_accurate() {
        // Random-ish chain of column exchanges on a larger matrix: both
        // factorizations must keep solving exactly, with the LU update cost
        // staying bounded (covered implicitly by the unnz tracking).
        let m = 12;
        let mut triplets = Vec::new();
        let mut seed = 0x5eed_1234u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        // Structural columns with 3 entries each + unit columns.
        let n_struct = 10;
        for j in 0..n_struct {
            for k in 0..3 {
                let r = ((next() as usize) + k) % m;
                let v = ((next() % 9) as f64 - 4.0).abs() + 0.5;
                triplets.push((r, j, if next() % 2 == 0 { v } else { -v }));
            }
        }
        for r in 0..m {
            triplets.push((r, n_struct + r, 1.0));
        }
        let a = CscMatrix::from_triplets(m, n_struct + m, &triplets);
        for mut fac in factor_kinds() {
            let mut basis: Vec<usize> = (0..m).map(|r| n_struct + r).collect();
            assert!(fac.refactorize(&a, &mut basis));
            let mut stamp = vec![0u32; m];
            let mut epoch = 0u32;
            for entering in 0..n_struct {
                if basis.contains(&entering) {
                    continue;
                }
                let mut work = vec![0.0; m];
                let mut touched: Vec<u32> = Vec::new();
                epoch += 1;
                let (rows, vals) = a.col(entering);
                for (&r, &v) in rows.iter().zip(vals) {
                    stamp[r as usize] = epoch;
                    touched.push(r);
                    work[r as usize] = v;
                }
                fac.ftran_sparse(&mut work, &mut touched, &mut stamp, epoch);
                let Some(row) = (0..m)
                    .filter(|&r| work[r].abs() > 1e-6 && basis[r] >= n_struct)
                    .max_by(|&x, &y| work[x].abs().partial_cmp(&work[y].abs()).unwrap())
                else {
                    continue;
                };
                if !fac.update(row, &work, &touched) {
                    assert!(fac.refactorize(&a, &mut basis));
                    continue;
                }
                basis[row] = entering;
                // Verify the solve after every exchange.
                let rhs: Vec<f64> = (0..m).map(|r| (r as f64) - 3.0).collect();
                let mut x = rhs.clone();
                fac.ftran(&mut x);
                check_ftran(&a, &basis, &x, &rhs);
            }
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let a = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 1, 2.0), (0, 2, 1.0)]);
        for mut fac in factor_kinds() {
            let mut basis = vec![0, 1];
            assert!(!fac.refactorize(&a, &mut basis));
        }
    }
}
