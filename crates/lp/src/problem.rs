//! Linear program model: non-negative variables, linear constraints, and a
//! linear objective.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a decision variable in an [`LpProblem`].
///
/// All variables are implicitly constrained to be non-negative, which matches
/// every formulation in the paper (message fractions, occupation times and
/// tree weights are all non-negative quantities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl VarId {
    /// The variable id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize the objective function (e.g. throughput).
    Maximize,
    /// Minimize the objective function (e.g. the period `T*`).
    Minimize,
}

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// One linear constraint `sum coeff_j * x_j  (<=|>=|==)  rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse list of `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// The constraint relation.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// Errors returned by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The solver exceeded its iteration budget (numerical trouble).
    IterationLimit,
    /// The model references an unknown variable or contains a non-finite
    /// coefficient.
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution of an [`LpProblem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Optimal objective value (in the problem's own direction).
    pub objective: f64,
    values: Vec<f64>,
    duals: Vec<f64>,
    degraded: bool,
}

impl LpSolution {
    pub(crate) fn new(objective: f64, values: Vec<f64>) -> Self {
        LpSolution {
            objective,
            values,
            duals: Vec::new(),
            degraded: false,
        }
    }

    pub(crate) fn with_duals(objective: f64, values: Vec<f64>, duals: Vec<f64>) -> Self {
        LpSolution {
            objective,
            values,
            duals,
            degraded: false,
        }
    }

    /// Flags this solution as an anytime answer produced under an exhausted
    /// [`crate::SolveBudget`] rather than a certified optimum.
    pub(crate) fn mark_degraded(&mut self) {
        self.degraded = true;
    }

    /// `true` when the solver ran out of its [`crate::SolveBudget`] before
    /// certifying optimality and returned the best primal-feasible vertex it
    /// reached instead. The solution is feasible and [`Self::objective`] is
    /// a valid achievable bound on the optimum (a lower bound when
    /// maximizing, an upper bound when minimizing), but a larger budget may
    /// find a strictly better point. Never set on an unlimited solve.
    #[inline]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Value of a variable in the optimal solution.
    #[inline]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The optimal dual values (shadow prices), one per constraint row, in
    /// the problem's own optimization sense: `duals()[i]` is the marginal
    /// change of the optimal objective per unit increase of constraint `i`'s
    /// right-hand side.
    ///
    /// Only the revised engine produces duals (the dense tableau oracle
    /// reports an empty slice). They are *shadow-RHS aware*: the engine's
    /// anti-degeneracy RHS perturbation never enters the pricing vector, so
    /// strong duality `Σ_i duals()[i] · rhs_i = objective` holds against the
    /// exact, unperturbed right-hand sides — the property the differential
    /// test against the dense oracle pins down. This is the groundwork for
    /// exact column-generation pricing over the realization tree pool.
    ///
    /// ```
    /// use pm_lp::{LpProblem, Objective, Relation, SolverKind};
    ///
    /// // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2
    /// let mut lp = LpProblem::new(Objective::Maximize);
    /// let x = lp.add_var("x");
    /// let y = lp.add_var("y");
    /// lp.set_objective_coeff(x, 3.0);
    /// lp.set_objective_coeff(y, 2.0);
    /// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
    /// lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
    /// let sol = lp.solve_with(SolverKind::Revised).unwrap();
    ///
    /// // Both rows bind: relaxing row 0 is worth 2 (one more y), relaxing
    /// // row 1 is worth 1 (swap one y for one x).
    /// assert!((sol.duals()[0] - 2.0).abs() < 1e-9);
    /// assert!((sol.duals()[1] - 1.0).abs() < 1e-9);
    ///
    /// // Strong duality against the exact right-hand sides.
    /// let dual_obj: f64 = sol
    ///     .duals()
    ///     .iter()
    ///     .zip(lp.constraints())
    ///     .map(|(y, c)| y * c.rhs)
    ///     .sum();
    /// assert!((dual_obj - sol.objective).abs() < 1e-9);
    /// ```
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

/// A linear program over non-negative variables.
///
/// Besides the implicit `x ≥ 0` bound, every variable can be *fixed to
/// zero* in place ([`LpProblem::fix_var`]), and every constraint's RHS can
/// be updated in place ([`LpProblem::set_rhs`]). Neither operation changes
/// the constraint *pattern*, so a sequence of re-solves after bound/RHS
/// updates keeps the same warm-start signature (see
/// [`crate::revised::WarmStartCache`]) — this is what the masked
/// sub-platform formulations in `pm-core` are built on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LpProblem {
    objective: Objective,
    names: Vec<String>,
    objective_coeffs: Vec<f64>,
    constraints: Vec<Constraint>,
    /// Variables currently fixed to zero (same length as `names`).
    fixed: Vec<bool>,
    /// Lexicographic secondary objective coefficients (empty when unused;
    /// grown on demand, so it may be shorter than `names`). See
    /// [`LpProblem::set_secondary_coeff`].
    secondary: Vec<f64>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(objective: Objective) -> Self {
        LpProblem {
            objective,
            names: Vec::new(),
            objective_coeffs: Vec::new(),
            constraints: Vec::new(),
            fixed: Vec::new(),
            secondary: Vec::new(),
        }
    }

    /// Builds a problem from a `(row, col, value)` triplet stream: variable
    /// `j` gets objective coefficient `objective_coeffs[j]` and the name
    /// `x{j}`, row `i` is `Σ value · x_col (relation_i) rhs_i`. Duplicate
    /// `(row, col)` triplets are summed by the solvers; explicit zeros are
    /// dropped here. This is the preferred construction path for large
    /// machine-generated models (see also [`crate::sparse::SparseBuilder`]
    /// for an incremental variant with named variables).
    pub fn from_triplets(
        objective: Objective,
        objective_coeffs: Vec<f64>,
        rows: Vec<(Relation, f64)>,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LpError> {
        let names = (0..objective_coeffs.len())
            .map(|j| format!("x{j}"))
            .collect();
        Self::from_parts(objective, names, objective_coeffs, rows, triplets.to_vec())
    }

    /// Shared triplet-grouping backend of [`LpProblem::from_triplets`] and
    /// [`crate::sparse::SparseBuilder::build`].
    pub(crate) fn from_parts(
        objective: Objective,
        names: Vec<String>,
        objective_coeffs: Vec<f64>,
        rows: Vec<(Relation, f64)>,
        triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self, LpError> {
        let m = rows.len();
        // Counting sort by row keeps the grouping linear in nnz.
        let mut counts = vec![0usize; m + 1];
        for &(r, _, _) in &triplets {
            if r >= m {
                return Err(LpError::InvalidModel(format!(
                    "triplet references unknown row {r} (model has {m} rows)"
                )));
            }
            counts[r + 1] += 1;
        }
        for i in 0..m {
            counts[i + 1] += counts[i];
        }
        let mut terms: Vec<Vec<(VarId, f64)>> = counts
            .windows(2)
            .map(|w| Vec::with_capacity(w[1] - w[0]))
            .collect();
        for &(r, c, v) in &triplets {
            if v != 0.0 {
                terms[r].push((VarId(c), v));
            }
        }
        let constraints = terms
            .into_iter()
            .zip(rows)
            .map(|(terms, (relation, rhs))| Constraint {
                terms,
                relation,
                rhs,
            })
            .collect();
        let fixed = vec![false; names.len()];
        let problem = LpProblem {
            objective,
            names,
            objective_coeffs,
            constraints,
            fixed,
            secondary: Vec::new(),
        };
        problem.validate()?;
        Ok(problem)
    }

    /// The optimization direction.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Adds a non-negative variable with objective coefficient 0 and returns
    /// its id.
    pub fn add_var(&mut self, name: &str) -> VarId {
        let id = VarId(self.names.len());
        self.names.push(name.to_string());
        self.objective_coeffs.push(0.0);
        self.fixed.push(false);
        id
    }

    /// Fixes a variable to zero in place (an upper-bound update `x_j ≤ 0` on
    /// top of the implicit `x_j ≥ 0`). The constraint pattern — and thus the
    /// warm-start signature — is unchanged; the solvers simply never let the
    /// column take a positive value.
    pub fn fix_var(&mut self, var: VarId) {
        self.fixed[var.index()] = true;
    }

    /// Releases a variable previously fixed to zero.
    pub fn unfix_var(&mut self, var: VarId) {
        self.fixed[var.index()] = false;
    }

    /// Whether the variable is currently fixed to zero.
    #[inline]
    pub fn is_fixed(&self, var: VarId) -> bool {
        self.fixed[var.index()]
    }

    /// Releases every fixed variable.
    pub fn clear_fixed(&mut self) {
        self.fixed.iter_mut().for_each(|f| *f = false);
    }

    /// Number of variables currently fixed to zero.
    pub fn fixed_count(&self) -> usize {
        self.fixed.iter().filter(|&&f| f).count()
    }

    /// Updates the right-hand side of constraint `row` in place.
    ///
    /// The sign of the RHS participates in the structural signature (it
    /// decides the slack/artificial layout after the `b ≥ 0` normalisation),
    /// so warm-start-friendly updates should keep the sign; crossing zero is
    /// legal but produces a structurally different problem.
    ///
    /// # Panics
    /// Panics if `row` is out of range or `rhs` is not finite.
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        assert!(rhs.is_finite(), "constraint {row} rhs must be finite");
        self.constraints[row].rhs = rhs;
    }

    /// The right-hand side of constraint `row`.
    pub fn rhs(&self, row: usize) -> f64 {
        self.constraints[row].rhs
    }

    /// Updates the coefficient of `var` in constraint `row` in place.
    ///
    /// The term must already exist and the new coefficient must be finite
    /// and nonzero: in-place edits may change coefficient *values* but never
    /// the sparsity *pattern*, so the warm-start signature (see
    /// [`crate::revised::WarmStartCache`]) is unchanged and any previous
    /// optimal basis of the problem remains a valid hint. This is what makes
    /// edge-cost drift on the masked `pm-core` templates a cheap delta: the
    /// occupation-row coefficients are rewritten and the next solve repairs
    /// the old basis in a few pivots instead of rebuilding the formulation.
    ///
    /// # Panics
    /// Panics if `row` is out of range, the term does not exist, or `coeff`
    /// is zero or non-finite.
    pub fn set_coeff(&mut self, row: usize, var: VarId, coeff: f64) {
        assert!(
            coeff.is_finite() && coeff != 0.0,
            "in-place coefficient of {} in row {row} must be finite and nonzero (got {coeff}); \
             a zero would change the sparsity pattern and with it the warm-start signature",
            self.names[var.index()]
        );
        let term = self.constraints[row]
            .terms
            .iter_mut()
            .find(|(v, _)| *v == var)
            .unwrap_or_else(|| {
                panic!(
                    "constraint {row} has no term on variable {}: in-place edits cannot \
                     create terms",
                    var.index()
                )
            });
        term.1 = coeff;
    }

    /// The coefficient of `var` in constraint `row` (0 when the term is not
    /// present).
    pub fn coeff(&self, row: usize, var: VarId) -> f64 {
        self.constraints[row]
            .terms
            .iter()
            .find(|(v, _)| *v == var)
            .map_or(0.0, |&(_, c)| c)
    }

    /// Updates the objective coefficient of a variable in place — the
    /// objective-side counterpart of [`LpProblem::set_coeff`]. Objective
    /// coefficients never participate in the warm-start signature, so this
    /// edit, too, keeps every cached basis reusable.
    pub fn set_obj(&mut self, var: VarId, coeff: f64) {
        self.set_objective_coeff(var, coeff);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// Sets the objective coefficient of a variable.
    pub fn set_objective_coeff(&mut self, var: VarId, coeff: f64) {
        self.objective_coeffs[var.index()] = coeff;
    }

    /// The objective coefficient of a variable.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.objective_coeffs[var.index()]
    }

    /// Sets `var`'s coefficient in the *lexicographic secondary objective*.
    ///
    /// Degenerate problems have many tied-optimal vertices, and which one a
    /// simplex engine reports depends on its pivot path — pricing rule,
    /// basis factorization, warm-start hints. When any secondary coefficient
    /// is set, the engines append a third phase after proving the primary
    /// objective optimal: they *minimize* `Σ secondaryⱼ·xⱼ` over the optimal
    /// face, pivoting only on columns whose primary reduced cost is zero.
    /// The primary objective value is untouched (every such pivot moves
    /// along the optimal face), but the reported *point* becomes canonical:
    /// whenever the secondary optimum is unique, cold solves, warm-started
    /// re-solves and both basis factorizations all land on the same vertex.
    ///
    /// The flow formulations in `pm-core` use this to report
    /// traffic-parsimonious flows (secondary = cost-weighted total traffic),
    /// which keeps greedy node scores independent of the pivot path.
    ///
    /// The secondary is always minimized, regardless of the primary sense,
    /// and must be bounded below on the optimal face (guaranteed for
    /// non-negative coefficients, since every variable satisfies `x ≥ 0`).
    /// Like primary costs, secondary coefficients never participate in the
    /// warm-start signature.
    pub fn set_secondary_coeff(&mut self, var: VarId, coeff: f64) {
        if self.secondary.len() <= var.index() {
            self.secondary.resize(var.index() + 1, 0.0);
        }
        self.secondary[var.index()] = coeff;
    }

    /// `var`'s coefficient in the lexicographic secondary objective (0 when
    /// never set).
    pub fn secondary_coeff(&self, var: VarId) -> f64 {
        self.secondary.get(var.index()).copied().unwrap_or(0.0)
    }

    /// Whether any secondary objective coefficient is set (the engines run
    /// the lexicographic cleanup phase exactly in this case).
    pub fn has_secondary(&self) -> bool {
        self.secondary.iter().any(|&c| c != 0.0)
    }

    /// Removes the secondary objective entirely.
    pub fn clear_secondary(&mut self) {
        self.secondary.clear();
    }

    /// Adds the constraint `sum terms (relation) rhs`. Terms referring to the
    /// same variable several times are summed.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> usize {
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
        self.constraints.len() - 1
    }

    /// The constraints of the problem.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Validates the model: every referenced variable exists and every
    /// coefficient is finite.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, c) in self.constraints.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "constraint {i} has non-finite rhs {}",
                    c.rhs
                )));
            }
            for &(v, coeff) in &c.terms {
                if v.index() >= self.names.len() {
                    return Err(LpError::InvalidModel(format!(
                        "constraint {i} references unknown variable {}",
                        v.index()
                    )));
                }
                if !coeff.is_finite() {
                    return Err(LpError::InvalidModel(format!(
                        "constraint {i} has non-finite coefficient on {}",
                        self.names[v.index()]
                    )));
                }
            }
        }
        for (j, &c) in self.objective_coeffs.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "objective coefficient of {} is not finite",
                    self.names[j]
                )));
            }
        }
        if self.secondary.len() > self.names.len() {
            return Err(LpError::InvalidModel(format!(
                "secondary objective references {} variables (model has {})",
                self.secondary.len(),
                self.names.len()
            )));
        }
        for (j, &c) in self.secondary.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "secondary objective coefficient of {} is not finite",
                    self.names[j]
                )));
            }
        }
        Ok(())
    }

    /// Solves the problem with the default engine (the sparse revised
    /// simplex unless overridden, see [`crate::solver::SolverKind`]). When a
    /// [`crate::revised::WarmStartCache`] scope is active on the current
    /// thread, the revised engine warm-starts from the cached basis of the
    /// last structurally identical solve.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(crate::solver::default_solver())
    }

    /// Solves the problem with an explicitly chosen engine. With
    /// `PM_LP_PRESOLVE=1` the problem is first reduced by
    /// [`crate::presolve::presolve`] (and the reduced solution postsolved
    /// back), unless a [`crate::revised::WarmStartCache`] scope is active on
    /// the current thread — presolve changes the constraint pattern and
    /// would defeat scoped warm-start reuse — or a lexicographic secondary
    /// objective is set (the reductions do not model it).
    pub fn solve_with(&self, solver: crate::solver::SolverKind) -> Result<LpSolution, LpError> {
        self.validate()?;
        if crate::solver::presolve_enabled()
            && !crate::revised::scope_active()
            && !self.has_secondary()
        {
            // Presolve is an accelerator, never a correctness dependency:
            // a reduction or postsolve failure (other than a genuine
            // infeasibility proof, which is a final verdict) falls back to
            // solving the original, unreduced problem.
            match crate::presolve::presolve(self) {
                Ok(presolved) if presolved.is_reduced() => match presolved.solve_with(solver) {
                    Ok(solution) => return Ok(solution),
                    Err(LpError::Infeasible) => return Err(LpError::Infeasible),
                    Err(_) => {}
                },
                Ok(_) => {}
                Err(LpError::Infeasible) => return Err(LpError::Infeasible),
                Err(_) => {}
            }
        }
        match solver {
            crate::solver::SolverKind::Dense => {
                // Keep the scope's solve accounting truthful when the dense
                // oracle is selected: every dense solve is a cold solve.
                crate::revised::note_scoped_cold_solve();
                crate::simplex::solve(self)
            }
            crate::solver::SolverKind::Revised => crate::revised::solve_scoped(self),
        }
    }

    /// Re-solves the problem under a [`crate::revised::BoundsOverlay`] —
    /// additional variables fixed to zero and RHS overrides applied on top
    /// of the stored model without mutating it — warm-starting from `hint`
    /// when one is given. The overlay makes candidate evaluation shareable:
    /// one immutable template problem can be re-solved concurrently under
    /// different overlays. Always runs on the revised engine (the overlay
    /// *is* its warm-start/bound machinery); see
    /// [`crate::revised::resolve_with_bounds`].
    pub fn resolve_with_bounds(
        &self,
        overlay: &crate::revised::BoundsOverlay,
        hint: Option<&crate::revised::Basis>,
    ) -> Result<crate::revised::SolveOutcome, LpError> {
        crate::revised::resolve_with_bounds(self, overlay, hint)
    }

    /// [`Self::resolve_with_bounds`] under explicit deterministic work caps:
    /// see [`crate::SolveBudget`] and
    /// [`crate::revised::resolve_with_bounds_budgeted`] for the anytime
    /// degradation semantics.
    pub fn resolve_with_bounds_budgeted(
        &self,
        overlay: &crate::revised::BoundsOverlay,
        hint: Option<&crate::revised::Basis>,
        budget: Option<crate::solver::SolveBudget>,
    ) -> Result<crate::revised::SolveOutcome, LpError> {
        crate::revised::resolve_with_bounds_budgeted(self, overlay, hint, budget)
    }

    /// Evaluates the objective function at the given point.
    pub fn objective_value_at(&self, values: &[f64]) -> f64 {
        self.objective_coeffs
            .iter()
            .zip(values)
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Checks whether `values` satisfies every constraint up to tolerance
    /// `tol` (and non-negativity).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.num_vars() {
            return false;
        }
        if values.iter().any(|&v| v < -tol) {
            return false;
        }
        if values
            .iter()
            .zip(&self.fixed)
            .any(|(&v, &fixed)| fixed && v > tol)
        {
            return false;
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * values[v.index()]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_building_and_accessors() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.var_name(y), "y");
        assert_eq!(lp.objective_coeff(y), 2.0);
        assert_eq!(lp.objective(), Objective::Minimize);
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_models() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.add_constraint(vec![(VarId(5), 1.0)], Relation::Le, 1.0);
        assert!(matches!(lp.validate(), Err(LpError::InvalidModel(_))));

        let mut lp = LpProblem::new(Objective::Maximize);
        let x2 = lp.add_var("x");
        lp.add_constraint(vec![(x2, f64::NAN)], Relation::Le, 1.0);
        assert!(matches!(lp.validate(), Err(LpError::InvalidModel(_))));

        let mut lp = LpProblem::new(Objective::Maximize);
        lp.add_var("x");
        lp.set_objective_coeff(x, f64::INFINITY);
        assert!(matches!(lp.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn feasibility_checker() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 0.25);
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.1, 0.5], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[0.8, 0.5], 1e-9)); // violates Le
        assert!(!lp.is_feasible(&[-0.5, 0.5], 1e-9)); // negative variable
        assert!(!lp.is_feasible(&[0.5], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_at_point() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 3.0);
        lp.set_objective_coeff(y, -1.0);
        assert_eq!(lp.objective_value_at(&[2.0, 4.0]), 2.0);
    }
}
