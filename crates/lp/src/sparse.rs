//! Sparse building blocks for the revised simplex: a compressed-sparse-column
//! matrix and a triplet-based [`LpProblem`] builder.
//!
//! The steady-state multicast LPs are network-flow shaped — each constraint
//! touches only the few edge variables incident to one node — so the solver
//! works column-wise on a [`CscMatrix`] instead of eliminating dense rows.
//! Formulations emit `(row, column, coefficient)` triplets through
//! [`SparseBuilder`] (or [`LpProblem::from_triplets`]) and never materialize
//! zero coefficients.

use crate::problem::{LpError, LpProblem, Objective, Relation, VarId};

/// A read-only sparse matrix in compressed-sparse-column (CSC) layout.
///
/// Column `j` occupies `col_ptr[j]..col_ptr[j + 1]` in `row_idx` / `values`,
/// with row indices strictly increasing inside a column and duplicate
/// `(row, col)` triplets summed at construction time.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    m: usize,
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds an `m × n` matrix from `(row, col, value)` triplets. Duplicates
    /// are summed; explicit zeros (and duplicate groups summing to zero) are
    /// dropped.
    ///
    /// # Panics
    /// Panics if a triplet is out of bounds.
    pub fn from_triplets(m: usize, n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // Counting sort by column keeps construction linear; iterating the
        // triplets in input order twice preserves their relative order, so
        // row indices stay sorted inside a column whenever the triplets are
        // produced row-major (the builder's case). A per-column sort below
        // covers arbitrary input orders.
        let mut counts = vec![0usize; n + 1];
        for &(r, c, _) in triplets {
            assert!(r < m && c < n, "triplet ({r}, {c}) out of {m}×{n} bounds");
            counts[c + 1] += 1;
        }
        for j in 0..n {
            counts[j + 1] += counts[j];
        }
        let mut rows = vec![0u32; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[c];
            next[c] += 1;
            rows[slot] = r as u32;
            vals[slot] = v;
        }
        // Sort each column by row, then compress duplicates and zeros.
        let mut col_ptr = vec![0usize; n + 1];
        let mut out_rows: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut out_vals: Vec<f64> = Vec::with_capacity(triplets.len());
        for j in 0..n {
            let (lo, hi) = (counts[j], counts[j + 1]);
            let mut entries: Vec<(u32, f64)> = rows[lo..hi]
                .iter()
                .copied()
                .zip(vals[lo..hi].iter().copied())
                .collect();
            entries.sort_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < entries.len() {
                let row = entries[k].0;
                let mut sum = 0.0;
                while k < entries.len() && entries[k].0 == row {
                    sum += entries[k].1;
                    k += 1;
                }
                if sum != 0.0 {
                    out_rows.push(row);
                    out_vals.push(sum);
                }
            }
            col_ptr[j + 1] = out_rows.len();
        }
        CscMatrix {
            m,
            n,
            col_ptr,
            row_idx: out_rows,
            values: out_vals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// The `(row indices, values)` slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product `yᵀ a_j` of a dense vector with column `j`.
    #[inline]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += y[r as usize] * v;
        }
        acc
    }

    /// Scatters column `j` into a dense vector (which must be zeroed by the
    /// caller where it matters).
    #[inline]
    pub fn scatter_col(&self, j: usize, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r as usize] += v;
        }
    }

    /// Builds a compressed-sparse-row mirror: `(row_ptr, col_idx, values)`
    /// with row `i` occupying `row_ptr[i]..row_ptr[i + 1]`, column indices
    /// increasing inside a row. Used by the devex pricing path to gather a
    /// pivot row `ρᵀA` without scanning every column.
    pub fn to_csr(&self) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let mut row_ptr = vec![0usize; self.m + 1];
        for &r in &self.row_idx {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.m {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for j in 0..self.n {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                let slot = next[r as usize];
                next[r as usize] += 1;
                col_idx[slot] = j as u32;
                values[slot] = v;
            }
        }
        (row_ptr, col_idx, values)
    }
}

/// Incremental triplet-based builder for sparse [`LpProblem`]s.
///
/// The builder mirrors the `add_var` / `set_objective_coeff` surface of
/// [`LpProblem`] but collects constraints as a flat `(row, col, value)`
/// triplet stream: rows are opened with [`SparseBuilder::add_row`] and filled
/// with [`SparseBuilder::push`], and zero coefficients are dropped on the
/// spot. This is the construction path used by `pm-core::formulations`; the
/// legacy per-constraint `Vec<(VarId, f64)>` API on [`LpProblem`] remains for
/// small hand-written models and tests.
#[derive(Debug, Clone)]
pub struct SparseBuilder {
    objective: Objective,
    names: Vec<String>,
    objective_coeffs: Vec<f64>,
    secondary: Vec<(VarId, f64)>,
    rows: Vec<(Relation, f64)>,
    triplets: Vec<(usize, usize, f64)>,
}

/// Identifier of a constraint row being assembled by a [`SparseBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowId(pub usize);

impl SparseBuilder {
    /// Creates an empty builder with the given optimization direction.
    pub fn new(objective: Objective) -> Self {
        SparseBuilder {
            objective,
            names: Vec::new(),
            objective_coeffs: Vec::new(),
            secondary: Vec::new(),
            rows: Vec::new(),
            triplets: Vec::new(),
        }
    }

    /// Adds a non-negative variable and returns its id.
    pub fn add_var(&mut self, name: &str) -> VarId {
        let id = VarId(self.names.len());
        self.names.push(name.to_string());
        self.objective_coeffs.push(0.0);
        id
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Sets the objective coefficient of a variable.
    pub fn set_objective_coeff(&mut self, var: VarId, coeff: f64) {
        self.objective_coeffs[var.index()] = coeff;
    }

    /// Sets a lexicographic secondary-objective coefficient, forwarded to
    /// [`LpProblem::set_secondary_coeff`] at build time. Later entries for the
    /// same variable overwrite earlier ones.
    pub fn set_secondary_coeff(&mut self, var: VarId, coeff: f64) {
        self.secondary.push((var, coeff));
    }

    /// Opens a new constraint row `… (relation) rhs` and returns its id.
    pub fn add_row(&mut self, relation: Relation, rhs: f64) -> RowId {
        self.rows.push((relation, rhs));
        RowId(self.rows.len() - 1)
    }

    /// Appends the term `coeff · var` to a row. Zero coefficients are
    /// dropped; duplicate `(row, var)` terms are summed at build time.
    pub fn push(&mut self, row: RowId, var: VarId, coeff: f64) {
        if coeff != 0.0 {
            self.triplets.push((row.0, var.index(), coeff));
        }
    }

    /// Opens a row and fills it from an iterator in one call.
    pub fn add_constraint<I>(&mut self, terms: I, relation: Relation, rhs: f64) -> RowId
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let row = self.add_row(relation, rhs);
        for (var, coeff) in terms {
            self.push(row, var, coeff);
        }
        row
    }

    /// Finishes the model. Fails like [`LpProblem::validate`] on out-of-range
    /// variables or non-finite data.
    pub fn build(self) -> Result<LpProblem, LpError> {
        let mut problem = LpProblem::from_parts(
            self.objective,
            self.names,
            self.objective_coeffs,
            self.rows,
            self.triplets,
        )?;
        for (var, coeff) in self.secondary {
            problem.set_secondary_coeff(var, coeff);
        }
        Ok(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_from_triplets_sums_duplicates_and_drops_zeros() {
        let m = CscMatrix::from_triplets(
            3,
            4,
            &[
                (2, 0, 1.5),
                (0, 0, 2.0),
                (1, 2, -1.0),
                (1, 2, 1.0), // cancels to zero: dropped
                (0, 3, 4.0),
                (0, 3, 0.25),
                (2, 3, 0.0), // explicit zero: dropped
            ],
        );
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0), (&[0u32, 2][..], &[2.0, 1.5][..]));
        assert_eq!(m.col_nnz(1), 0);
        assert_eq!(m.col_nnz(2), 0);
        assert_eq!(m.col(3), (&[0u32][..], &[4.25][..]));
    }

    #[test]
    fn csc_col_dot_and_scatter() {
        let m = CscMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 0, 3.0), (1, 1, -2.0)]);
        let y = [10.0, 20.0, 30.0];
        assert_eq!(m.col_dot(0, &y), 100.0);
        assert_eq!(m.col_dot(1, &y), -40.0);
        let mut out = [0.0; 3];
        m.scatter_col(0, &mut out);
        assert_eq!(out, [1.0, 0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn csc_rejects_out_of_bounds_triplets() {
        CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn builder_matches_hand_built_problem() {
        let mut b = SparseBuilder::new(Objective::Maximize);
        let x = b.add_var("x");
        let y = b.add_var("y");
        b.set_objective_coeff(x, 3.0);
        b.set_objective_coeff(y, 5.0);
        let r0 = b.add_row(Relation::Le, 4.0);
        b.push(r0, x, 1.0);
        b.push(r0, y, 0.0); // dropped
        b.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        b.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let lp = b.build().unwrap();
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 3);
        assert_eq!(lp.constraints()[0].terms, vec![(x, 1.0)]);
        let s = lp.solve().unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6);
    }

    #[test]
    fn builder_rejects_non_finite_data() {
        let mut b = SparseBuilder::new(Objective::Minimize);
        let x = b.add_var("x");
        b.add_constraint([(x, f64::NAN)], Relation::Le, 1.0);
        assert!(matches!(b.build(), Err(LpError::InvalidModel(_))));
    }
}
