//! Dense two-phase primal simplex on the full tableau.
//!
//! The implementation follows the textbook method:
//!
//! 1. constraints are normalised to `a·x (≤|≥|=) b` with `b ≥ 0`, slack and
//!    surplus variables are added, and artificial variables complete the
//!    initial basis;
//! 2. phase 1 minimizes the sum of artificials — a strictly positive optimum
//!    means the program is infeasible;
//! 3. phase 2 optimizes the user's objective starting from the feasible basis
//!    produced by phase 1.
//!
//! Pivoting uses Dantzig's rule (most negative reduced cost) with a switch to
//! Bland's rule after a large number of iterations to guarantee termination
//! on degenerate problems.

use crate::problem::{LpError, LpProblem, LpSolution, Objective, Relation};
use crate::solver::{effective_relation, perturb_rhs, phase1_budget, phase2_budget, splitmix64};

/// Numerical tolerance used throughout the solver.
const EPS: f64 = 1e-9;

/// After this many consecutive pivots without objective progress the solver
/// switches from Dantzig's rule to Bland's rule; it switches back as soon as
/// the objective moves again. Degenerate vertices are escaped in a handful
/// of Bland pivots, while the fast Dantzig rule drives all non-degenerate
/// progress — a fixed one-way switch (the previous behaviour) let Dantzig
/// stall for tens of thousands of pivots on the multicast LPs and then
/// crawled through the whole remaining solve under Bland.
const STALL_SWITCH: usize = 64;

/// A dense simplex tableau.
struct Tableau {
    /// Row-major coefficient matrix (m rows × n cols).
    a: Vec<f64>,
    /// Right-hand sides (length m), kept non-negative. Carries the
    /// anti-degeneracy perturbation (see `solve`), so it drives the ratio
    /// tests but is never reported.
    b: Vec<f64>,
    /// Unperturbed right-hand sides, updated by the same row operations as
    /// `b`; the final solution values are read from here.
    b_shadow: Vec<f64>,
    /// Objective row (reduced costs, length n) for the phase being solved.
    obj: Vec<f64>,
    /// Current objective value (negated running constant).
    obj_value: f64,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    m: usize,
    n: usize,
    /// SplitMix64 state for the randomized ratio-test tie-break; seeded
    /// deterministically from the problem dimensions so identical problems
    /// follow identical pivot paths (bit-reproducible solves).
    rng: u64,
    /// Pivots performed by the last `optimize` call (`PM_LP_STATS=1`
    /// diagnostics).
    iters: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.n + c] = v;
    }

    /// Performs a pivot on `(row, col)`: the variable `col` enters the basis
    /// and the variable previously basic in `row` leaves.
    fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n;
        let pivot = self.at(row, col);
        debug_assert!(pivot.abs() > EPS, "pivot element too small");
        let inv = 1.0 / pivot;
        // Normalize the pivot row.
        {
            let start = row * n;
            for j in 0..n {
                self.a[start + j] *= inv;
            }
            self.b[row] *= inv;
            self.b_shadow[row] *= inv;
        }
        // Eliminate the pivot column from every other row.
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor.abs() <= EPS {
                if factor != 0.0 {
                    self.set(r, col, 0.0);
                }
                continue;
            }
            let (pr_start, rr_start) = (row * n, r * n);
            for j in 0..n {
                self.a[rr_start + j] -= factor * self.a[pr_start + j];
            }
            self.b[r] -= factor * self.b[row];
            if self.b[r].abs() < EPS {
                self.b[r] = 0.0;
            }
            self.b_shadow[r] -= factor * self.b_shadow[row];
            self.set(r, col, 0.0);
        }
        // Update the objective row.
        let factor = self.obj[col];
        if factor.abs() > 0.0 {
            let pr_start = row * n;
            for j in 0..n {
                self.obj[j] -= factor * self.a[pr_start + j];
            }
            self.obj_value -= factor * self.b[row];
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Next word of the deterministic tie-break stream.
    fn next_rand(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Runs the simplex iterations on the current objective row
    /// (minimization: stop when every reduced cost is ≥ -EPS).
    fn optimize(&mut self, allowed: &dyn Fn(usize) -> bool, budget: usize) -> Result<(), LpError> {
        let mut stalled = 0usize;
        let mut last_obj = self.obj_value;
        self.iters = 0;
        for iter in 0..budget {
            let use_bland = stalled >= STALL_SWITCH;
            // Choose the entering column.
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for j in 0..self.n {
                if !allowed(j) {
                    continue;
                }
                let rc = self.obj[j];
                if use_bland {
                    if rc < -EPS {
                        entering = Some(j);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    entering = Some(j);
                }
            }
            let Some(col) = entering else {
                return Ok(()); // optimal
            };
            // Ratio test for the leaving row. Ties (the degenerate case) are
            // broken by the smallest basis index under Bland's rule (required
            // for its termination guarantee) and uniformly at random
            // otherwise, via reservoir sampling over the tied rows. The
            // multicast LPs are massively degenerate (hundreds of rows tie
            // at ratio zero), and every deterministic tie-break rule we
            // tried (smallest basis index, largest pivot element, float
            // lexicographic) stalled for minutes on some generated instance;
            // random tie-breaking makes such adversarial patterns
            // measure-zero while the seeded generator keeps every solve
            // bit-reproducible. Bland's fallback still guarantees
            // termination if a stall does happen.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut ties = 0usize;
            for r in 0..self.m {
                let a = self.at(r, col);
                if a > EPS {
                    let ratio = self.b[r] / a;
                    match leaving {
                        None => {
                            leaving = Some(r);
                            best_ratio = ratio;
                            ties = 1;
                        }
                        Some(lr) => {
                            if ratio < best_ratio - EPS {
                                leaving = Some(r);
                                best_ratio = ratio;
                                ties = 1;
                            } else if (ratio - best_ratio).abs() <= EPS {
                                if use_bland {
                                    if self.basis[r] < self.basis[lr] {
                                        leaving = Some(r);
                                        best_ratio = ratio;
                                    }
                                } else {
                                    // Reservoir sampling: the k-th tied row
                                    // replaces the incumbent with prob. 1/k.
                                    ties += 1;
                                    if self.next_rand().is_multiple_of(ties as u64) {
                                        leaving = Some(r);
                                        best_ratio = ratio;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let Some(row) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            self.iters = iter + 1;
            // Anti-stalling bookkeeping: count consecutive degenerate pivots.
            // `obj_value` is the running *negated* objective constant (see
            // `pivot`), so a productive minimization pivot makes it grow.
            if self.obj_value - last_obj > EPS * (1.0 + last_obj.abs()) {
                stalled = 0;
                last_obj = self.obj_value;
            } else {
                stalled += 1;
            }
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves an [`LpProblem`] and returns the optimal solution.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let num_user_vars = problem.num_vars();
    let constraints = problem.constraints();
    let m = constraints.len();

    // Count slack/surplus and artificial variables.
    let mut num_slack = 0usize;
    let mut num_artificial = 0usize;
    for c in constraints {
        // Normalise to b >= 0 first to decide what the row needs.
        let flip = c.rhs < 0.0;
        let relation = effective_relation(c.relation, flip);
        match relation {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_artificial += 1;
            }
            Relation::Eq => num_artificial += 1,
        }
    }

    let n = num_user_vars + num_slack + num_artificial;
    let mut a = vec![0.0; m * n];
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let artificial_start = num_user_vars + num_slack;
    // Effective (normalised) relation of each row, for the anti-degeneracy
    // perturbation below.
    let mut row_relation = vec![Relation::Eq; m];

    let mut slack_idx = num_user_vars;
    let mut art_idx = artificial_start;
    for (r, c) in constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(v, coeff) in &c.terms {
            a[r * n + v.index()] += sign * coeff;
        }
        b[r] = sign * c.rhs;
        row_relation[r] = effective_relation(c.relation, flip);
        match row_relation[r] {
            Relation::Le => {
                a[r * n + slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[r * n + slack_idx] = -1.0; // surplus
                slack_idx += 1;
                a[r * n + art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                a[r * n + art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    // Anti-degeneracy RHS perturbation (see `solver::perturb_rhs` for the
    // scheme shared with the revised engine); the solution values are read
    // from `b_shadow`, which carries the *unperturbed* RHS through the same
    // row operations (so they solve `B x_B = b_orig` exactly, up to the
    // usual floating-point error).
    let b_shadow = b.clone();
    perturb_rhs(&mut b, &row_relation, n);

    let mut tableau = Tableau {
        a,
        b,
        b_shadow,
        obj: vec![0.0; n],
        obj_value: 0.0,
        basis,
        m,
        n,
        rng: 0x9e37_79b9_7f4a_7c15 ^ ((m as u64) << 32) ^ n as u64,
        iters: 0,
    };
    let stats = crate::solver::stats_enabled();
    let nnz: usize =
        constraints.iter().map(|c| c.terms.len()).sum::<usize>() + num_slack + num_artificial;
    let solve_start = std::time::Instant::now();
    let mut phase1_iters = 0usize;

    // ---- Phase 1: minimize the sum of artificial variables. ----
    if num_artificial > 0 {
        for j in artificial_start..n {
            tableau.obj[j] = 1.0;
        }
        // Make the objective row consistent with the starting basis (price
        // out the basic artificial variables).
        for r in 0..m {
            if tableau.basis[r] >= artificial_start {
                for j in 0..n {
                    tableau.obj[j] -= tableau.at(r, j);
                }
                tableau.obj_value -= tableau.b[r];
            }
        }
        // Fixed-to-zero user columns may never enter (they start nonbasic at
        // zero and stay there; see `LpProblem::fix_var`).
        let phase1_allowed =
            |j: usize| j >= num_user_vars || !problem.is_fixed(crate::problem::VarId(j));
        let phase1 = tableau.optimize(&phase1_allowed, phase1_budget(m, n));
        phase1_iters = tableau.iters;
        let phase1_value = -tableau.obj_value;
        let phase1_failed = phase1.is_err() || phase1_value > 1e-6;
        if stats && phase1_failed {
            eprintln!(
                "pm-lp: engine=dense m={m} n={n} nnz={nnz} phase1_pivots={phase1_iters} \
                 phase2_pivots=0 refactorizations=0 warm=none elapsed={:.3}s status={}",
                solve_start.elapsed().as_secs_f64(),
                if phase1.is_err() {
                    "phase1-error"
                } else {
                    "infeasible"
                },
            );
        }
        phase1?;
        if phase1_value > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variable still in the basis out of it (or note
        // the row as redundant if it cannot pivot on a structural column).
        for r in 0..m {
            if tableau.basis[r] >= artificial_start {
                let mut pivot_col = None;
                for j in 0..artificial_start {
                    if j < num_user_vars && problem.is_fixed(crate::problem::VarId(j)) {
                        continue;
                    }
                    if tableau.at(r, j).abs() > 1e-7 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(col) = pivot_col {
                    tableau.pivot(r, col);
                }
            }
        }
    }

    // ---- Phase 2: optimize the user objective. ----
    // Internally we always *minimize*; a maximization problem is minimized
    // with negated coefficients.
    let sense = match problem.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    tableau.obj = vec![0.0; n];
    tableau.obj_value = 0.0;
    for j in 0..num_user_vars {
        tableau.obj[j] = sense * problem.objective_coeff(crate::problem::VarId(j));
    }
    // Price out the current basic variables.
    for r in 0..m {
        let bv = tableau.basis[r];
        let cost = tableau.obj[bv];
        if cost.abs() > 0.0 {
            for j in 0..n {
                let val = tableau.at(r, j);
                tableau.obj[j] -= cost * val;
            }
            tableau.obj_value -= cost * tableau.b[r];
            tableau.obj[bv] = 0.0;
        }
    }
    // Artificial columns must never re-enter the basis; neither may fixed
    // user columns.
    let allowed = |j: usize| {
        j < artificial_start && (j >= num_user_vars || !problem.is_fixed(crate::problem::VarId(j)))
    };
    let phase2 = tableau.optimize(&allowed, phase2_budget(m, n));
    if stats {
        eprintln!(
            "pm-lp: engine=dense m={m} n={n} nnz={nnz} phase1_pivots={phase1_iters} \
             phase2_pivots={} refactorizations=0 warm=none elapsed={:.3}s status={}",
            tableau.iters,
            solve_start.elapsed().as_secs_f64(),
            if phase2.is_err() { "failed" } else { "ok" },
        );
    }
    phase2?;

    // ---- Phase 3: lexicographic secondary objective (when present). ----
    // Minimize the secondary over the phase-2 optimal face: only columns
    // whose primary reduced cost is zero (read straight off the optimal
    // phase-2 objective row) may enter, so every pivot keeps the primary
    // objective value and the reported vertex becomes canonical. See
    // `LpProblem::set_secondary_coeff` for the contract; the revised engine
    // runs the same phase.
    if problem.has_secondary() {
        let eligible: Vec<bool> = (0..n)
            .map(|j| allowed(j) && tableau.obj[j].abs() <= EPS)
            .collect();
        tableau.obj = vec![0.0; n];
        tableau.obj_value = 0.0;
        for j in 0..num_user_vars {
            tableau.obj[j] = problem.secondary_coeff(crate::problem::VarId(j));
        }
        for r in 0..m {
            let bv = tableau.basis[r];
            let cost = tableau.obj[bv];
            if cost.abs() > 0.0 {
                for j in 0..n {
                    let val = tableau.at(r, j);
                    tableau.obj[j] -= cost * val;
                }
                tableau.obj_value -= cost * tableau.b[r];
                tableau.obj[bv] = 0.0;
            }
        }
        let allowed3 = |j: usize| eligible[j];
        match tableau.optimize(&allowed3, phase2_budget(m, n)) {
            // A descent ray of the secondary does not make the problem
            // unbounded — the primary optimum is certified and the current
            // vertex is on the optimal face, so stop best-effort.
            Ok(()) | Err(LpError::Unbounded) => {}
            Err(e) => return Err(e),
        }
    }

    // Extract the solution from the unperturbed shadow RHS (a basic variable
    // may come out at a tiny negative value where the perturbation resolved
    // a degenerate vertex; clamp it to the bound).
    let mut values = vec![0.0; num_user_vars];
    for r in 0..m {
        let bv = tableau.basis[r];
        if bv < num_user_vars {
            values[bv] = tableau.b_shadow[r].max(0.0);
        }
    }
    let objective = problem.objective_value_at(&values);
    Ok(LpSolution::new(objective, values))
}

#[cfg(test)]
mod tests {
    use crate::problem::{LpError, LpProblem, Objective, Relation};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6)
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 3.0);
        lp.set_objective_coeff(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        approx(s.objective, 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn secondary_objective_canonicalizes_the_optimal_vertex() {
        // max x + y over x + y <= 1: the whole facet is optimal. The
        // secondary (min 2x + y over the optimal face) picks (0, 1) without
        // moving the primary objective.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.set_secondary_coeff(x, 2.0);
        lp.set_secondary_coeff(y, 1.0);
        let s = crate::simplex::solve(&lp).unwrap();
        approx(s.objective, 1.0);
        approx(s.value(x), 0.0);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn near_infeasible_large_rhs_is_still_infeasible() {
        // Infeasible by 1e-5 at RHS scale ~1000: the anti-degeneracy
        // perturbation must not relax the system into feasibility (its
        // per-row delta is capped well below the 1e-6 phase-1 tolerance).
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1000.00001);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1000.0);
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn simple_minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7,y=3 -> 23
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 2.0);
        lp.set_objective_coeff(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Ge, 3.0);
        let s = lp.solve().unwrap();
        approx(s.objective, 23.0);
        approx(s.value(x), 7.0);
        approx(s.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1 -> 3
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = lp.solve().unwrap();
        approx(s.value(x), 2.0);
        approx(s.value(y), 1.0);
        approx(s.objective, 3.0);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x - y <= -2 with x, y >= 0 means y >= x + 2.
        // min y s.t. x - y <= -2  -> y = 2 (x = 0).
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let s = lp.solve().unwrap();
        approx(s.objective, 2.0);
        approx(s.value(y), 2.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, 5.0);
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP (multiple constraints active at the origin).
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        let z = lp.add_var("z");
        lp.set_objective_coeff(x, 0.75);
        lp.set_objective_coeff(y, -150.0);
        lp.set_objective_coeff(z, 0.02);
        lp.add_constraint(vec![(x, 0.25), (y, -60.0), (z, -0.04)], Relation::Le, 0.0);
        lp.add_constraint(vec![(x, 0.5), (y, -90.0), (z, -0.02)], Relation::Le, 0.0);
        lp.add_constraint(vec![(z, 1.0)], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(s.objective.is_finite());
        assert!(lp.is_feasible(s.values(), 1e-6));
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // max x s.t. 0.5x + 0.5x <= 3  -> x = 3
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, 0.5), (x, 0.5)], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        approx(s.value(x), 3.0);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 stated twice plus x = 1: solution x = 1, y = 1.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Eq, 1.0);
        let s = lp.solve().unwrap();
        approx(s.value(x), 1.0);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn zero_objective_returns_a_feasible_point() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        let s = lp.solve().unwrap();
        assert!(lp.is_feasible(s.values(), 1e-9));
        approx(s.objective, 0.0);
    }

    #[test]
    fn larger_random_like_lp_is_feasible_and_optimal_looking() {
        // A transportation-style LP: 3 sources, 4 sinks.
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 20.0, 20.0];
        let cost = [
            [2.0, 3.0, 1.0, 4.0],
            [5.0, 1.0, 3.0, 2.0],
            [2.0, 2.0, 2.0, 6.0],
        ];
        let mut lp = LpProblem::new(Objective::Minimize);
        let mut vars = vec![];
        for (i, cost_row) in cost.iter().enumerate() {
            let mut row = vec![];
            for (j, &c) in cost_row.iter().enumerate() {
                let v = lp.add_var(&format!("x{i}{j}"));
                lp.set_objective_coeff(v, c);
                row.push(v);
            }
            vars.push(row);
        }
        for i in 0..3 {
            let terms = (0..4).map(|j| (vars[i][j], 1.0)).collect();
            lp.add_constraint(terms, Relation::Le, supply[i]);
        }
        for j in 0..4 {
            let terms = (0..3).map(|i| (vars[i][j], 1.0)).collect();
            lp.add_constraint(terms, Relation::Eq, demand[j]);
        }
        let s = lp.solve().unwrap();
        assert!(lp.is_feasible(s.values(), 1e-6));
        // Hand-checked optimum (verified with the transportation potentials
        // method): the optimal cost is 120.
        approx(s.objective, 120.0);
    }
}
