//! Seeded fault injection for the revised-simplex recovery ladder.
//!
//! Chaos mode deterministically injects solver faults — a "singular" basis
//! factorization, a poisoned warm-start hint, a pricing stall, a NaN in the
//! solution vector — so the recovery ladder of [`crate::revised`] can be
//! exercised end to end: every injected fault must end in a verified
//! optimum, a [`crate::LpSolution::degraded`] anytime solution, or a
//! structured [`crate::LpError`] — never a panic.
//!
//! Configuration sources, in precedence order:
//!
//! 1. a thread-local scope ([`with_chaos`]) — used by tests so parallel
//!    test threads cannot interfere,
//! 2. the process-wide programmatic config ([`set_chaos`]) — used by
//!    `fig11 --chaos`, whose solves run on real worker threads,
//! 3. the `PM_LP_CHAOS` environment variable, parsed once. Format:
//!    `FAULT:SEED` with `FAULT` ∈ `singular | hint | stall | nan | all`
//!    (plain `SEED` means `all`).
//!
//! Whether a given solve is struck, which fault fires, and for how many
//! ladder attempts is a pure function of the seed and the problem's
//! structural signature, so chaos runs are byte-deterministic across runs
//! and thread counts. Global outcome counters are commutative sums and can
//! be read with [`counters`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// One injectable solver fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The basis factorization pretends to be singular at the next
    /// optimization entry (the refactorization-failure path).
    SingularBasis,
    /// The warm-start hint is deterministically corrupted before it is
    /// installed (rows marked redundant that are not).
    PoisonHint,
    /// The pricing loop pretends to stall out of its iteration budget.
    PricingStall,
    /// A NaN is written into the solution vector, to be caught by the
    /// engine's non-finite guards.
    NanInjection,
}

/// Bit masks of the four faults (for [`ChaosConfig::faults`]).
const F_SINGULAR: u8 = 1;
const F_HINT: u8 = 2;
const F_STALL: u8 = 4;
const F_NAN: u8 = 8;
const F_ALL: u8 = F_SINGULAR | F_HINT | F_STALL | F_NAN;

/// A chaos-injection configuration: which faults may fire, under which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed mixed with each problem's structural signature to decide the
    /// per-solve injection plan.
    pub seed: u64,
    /// Bit mask of enabled faults (see [`ChaosConfig::all`] etc.).
    faults: u8,
}

impl ChaosConfig {
    /// Enables every fault under `seed`.
    pub fn all(seed: u64) -> Self {
        ChaosConfig {
            seed,
            faults: F_ALL,
        }
    }

    /// Enables a single fault under `seed`.
    pub fn only(fault: ChaosFault, seed: u64) -> Self {
        ChaosConfig {
            seed,
            faults: match fault {
                ChaosFault::SingularBasis => F_SINGULAR,
                ChaosFault::PoisonHint => F_HINT,
                ChaosFault::PricingStall => F_STALL,
                ChaosFault::NanInjection => F_NAN,
            },
        }
    }

    fn enabled_faults(&self) -> Vec<ChaosFault> {
        let mut out = Vec::with_capacity(4);
        if self.faults & F_SINGULAR != 0 {
            out.push(ChaosFault::SingularBasis);
        }
        if self.faults & F_HINT != 0 {
            out.push(ChaosFault::PoisonHint);
        }
        if self.faults & F_STALL != 0 {
            out.push(ChaosFault::PricingStall);
        }
        if self.faults & F_NAN != 0 {
            out.push(ChaosFault::NanInjection);
        }
        out
    }
}

thread_local! {
    /// Thread-local override: `None` = no override, `Some(None)` = chaos
    /// explicitly off for this scope, `Some(Some(cfg))` = on.
    static SCOPED: Cell<Option<Option<ChaosConfig>>> = const { Cell::new(None) };
}

/// Process-wide programmatic config (0 = unset, 1 = off, 2 = on).
static GLOBAL_STATE: AtomicU8 = AtomicU8::new(0);
static GLOBAL_SEED: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FAULTS: AtomicU8 = AtomicU8::new(0);

/// Sets (or clears, with `None`) the process-wide chaos configuration.
/// Takes precedence over `PM_LP_CHAOS`; a [`with_chaos`] scope on the
/// current thread still wins. Used by drivers whose solves fan out over
/// worker threads (thread-locals would not reach them).
pub fn set_chaos(config: Option<ChaosConfig>) {
    match config {
        Some(cfg) => {
            GLOBAL_SEED.store(cfg.seed, Ordering::Relaxed);
            GLOBAL_FAULTS.store(cfg.faults, Ordering::Relaxed);
            GLOBAL_STATE.store(2, Ordering::Relaxed);
        }
        None => GLOBAL_STATE.store(1, Ordering::Relaxed),
    }
}

/// Runs `f` with `config` as the chaos configuration on the current thread
/// (`None` forces chaos off). Restores the previous override on exit, so
/// scopes nest. Solves dispatched to other threads inside `f` do not see
/// the override — tests that need that use [`set_chaos`] instead.
pub fn with_chaos<R>(config: Option<ChaosConfig>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Option<ChaosConfig>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPED.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SCOPED.with(|s| s.replace(Some(config))));
    f()
}

/// `PM_LP_CHAOS`, parsed once.
fn env_chaos() -> Option<ChaosConfig> {
    static ENV: OnceLock<Option<ChaosConfig>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("PM_LP_CHAOS").ok()?;
        let (fault, seed) = match raw.split_once(':') {
            Some((f, s)) => (f.trim(), s.trim()),
            None => ("all", raw.trim()),
        };
        let faults = match fault {
            "singular" => F_SINGULAR,
            "hint" => F_HINT,
            "stall" => F_STALL,
            "nan" => F_NAN,
            "all" => F_ALL,
            other => {
                eprintln!(
                    "pm-lp: ignoring unknown PM_LP_CHAOS fault {other:?} \
                     (singular|hint|stall|nan|all)"
                );
                return None;
            }
        };
        let Ok(seed) = seed.parse::<u64>() else {
            eprintln!("pm-lp: ignoring unparsable PM_LP_CHAOS seed {seed:?}");
            return None;
        };
        Some(ChaosConfig { seed, faults })
    })
}

/// The chaos configuration in effect on the current thread, if any.
pub fn current() -> Option<ChaosConfig> {
    if let Some(scoped) = SCOPED.with(|s| s.get()) {
        return scoped;
    }
    match GLOBAL_STATE.load(Ordering::Relaxed) {
        2 => Some(ChaosConfig {
            seed: GLOBAL_SEED.load(Ordering::Relaxed),
            faults: GLOBAL_FAULTS.load(Ordering::Relaxed),
        }),
        1 => None,
        _ => env_chaos(),
    }
}

/// The injection plan for one solve: which fault fires, on how many leading
/// ladder attempts, and the hash driving any further deterministic choices
/// (e.g. which hint rows to poison).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChaosPlan {
    pub(crate) fault: ChaosFault,
    /// The fault strikes ladder attempts `0..strikes`.
    pub(crate) strikes: usize,
    pub(crate) hash: u64,
}

/// Computes the injection plan for a solve, given its structural signature
/// (computed lazily: signatures cost a hash pass and chaos is usually off).
pub(crate) fn plan(signature: impl FnOnce() -> u64) -> Option<ChaosPlan> {
    let cfg = current()?;
    let enabled = cfg.enabled_faults();
    if enabled.is_empty() {
        return None;
    }
    let mut h = cfg.seed ^ signature();
    let pick = crate::solver::splitmix64(&mut h);
    // Strike roughly one solve in three, so chaos sweeps still exercise
    // plenty of healthy solves (warm-start chains survive in between).
    if !pick.is_multiple_of(3) {
        return None;
    }
    let fault = enabled[(pick >> 8) as usize % enabled.len()];
    let strikes = 1 + ((pick >> 32) as usize % 3);
    Some(ChaosPlan {
        fault,
        strikes,
        hash: crate::solver::splitmix64(&mut h),
    })
}

/// Outcome counters of chaos-era solves (commutative atomic sums, so they
/// are deterministic regardless of thread interleaving).
static C_SOLVES: AtomicU64 = AtomicU64::new(0);
static C_INJECTED: AtomicU64 = AtomicU64::new(0);
static C_BY_RUNG: [AtomicU64; 6] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static C_DEGRADED: AtomicU64 = AtomicU64::new(0);
static C_UNRECOVERED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the global chaos/recovery counters (see [`counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Total revised-engine solves since the last [`reset_counters`].
    pub solves: u64,
    /// Solves that had at least one fault injected.
    pub injected: u64,
    /// Successful solves by winning recovery rung (0 = first attempt, 5 =
    /// the dense-tableau oracle).
    pub recovered_by_rung: [u64; 6],
    /// Solves that returned a budget-degraded anytime solution.
    pub degraded: u64,
    /// Solves that exhausted the whole ladder and still reported
    /// [`crate::LpError::IterationLimit`].
    pub unrecovered: u64,
}

/// Reads the global chaos/recovery counters.
pub fn counters() -> ChaosCounters {
    ChaosCounters {
        solves: C_SOLVES.load(Ordering::Relaxed),
        injected: C_INJECTED.load(Ordering::Relaxed),
        recovered_by_rung: [
            C_BY_RUNG[0].load(Ordering::Relaxed),
            C_BY_RUNG[1].load(Ordering::Relaxed),
            C_BY_RUNG[2].load(Ordering::Relaxed),
            C_BY_RUNG[3].load(Ordering::Relaxed),
            C_BY_RUNG[4].load(Ordering::Relaxed),
            C_BY_RUNG[5].load(Ordering::Relaxed),
        ],
        degraded: C_DEGRADED.load(Ordering::Relaxed),
        unrecovered: C_UNRECOVERED.load(Ordering::Relaxed),
    }
}

/// Resets the global chaos/recovery counters to zero.
pub fn reset_counters() {
    C_SOLVES.store(0, Ordering::Relaxed);
    C_INJECTED.store(0, Ordering::Relaxed);
    for c in &C_BY_RUNG {
        c.store(0, Ordering::Relaxed);
    }
    C_DEGRADED.store(0, Ordering::Relaxed);
    C_UNRECOVERED.store(0, Ordering::Relaxed);
}

/// Records one finished solve in the global counters.
pub(crate) fn record_outcome(
    injected: bool,
    rung: Option<usize>,
    degraded: bool,
    unrecovered: bool,
) {
    C_SOLVES.fetch_add(1, Ordering::Relaxed);
    if injected {
        C_INJECTED.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(r) = rung {
        C_BY_RUNG[r.min(5)].fetch_add(1, Ordering::Relaxed);
    }
    if degraded {
        C_DEGRADED.fetch_add(1, Ordering::Relaxed);
    }
    if unrecovered {
        C_UNRECOVERED.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_seed_and_signature() {
        let cfg = ChaosConfig::all(42);
        let (a, b) = with_chaos(Some(cfg), || {
            let a = plan(|| 0xdead_beef).map(|p| (p.fault, p.strikes, p.hash));
            let b = plan(|| 0xdead_beef).map(|p| (p.fault, p.strikes, p.hash));
            (a, b)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn scopes_nest_and_restore() {
        with_chaos(Some(ChaosConfig::all(1)), || {
            assert_eq!(current().map(|c| c.seed), Some(1));
            with_chaos(None, || assert_eq!(current(), None));
            assert_eq!(current().map(|c| c.seed), Some(1));
        });
    }

    #[test]
    fn single_fault_configs_only_fire_that_fault() {
        with_chaos(Some(ChaosConfig::only(ChaosFault::NanInjection, 7)), || {
            for sig in 0..200u64 {
                if let Some(p) = plan(|| sig) {
                    assert_eq!(p.fault, ChaosFault::NanInjection);
                    assert!((1..=3).contains(&p.strikes));
                }
            }
        });
    }
}
