//! # pm-lp
//!
//! A self-contained linear-programming toolkit, written from scratch for the
//! pipelined-multicast reproduction: the paper's bounds (`Multicast-LB`,
//! `Multicast-UB`, `Broadcast-EB`, `MulticastMultiSource-UB`) and the exact
//! tree-packing baseline are all linear programs, and this crate is the only
//! LP dependency of the workspace.
//!
//! * [`problem`] — an [`LpProblem`] model builder
//!   (non-negative variables, `≤ / ≥ / =` constraints, maximize or minimize),
//! * [`sparse`] — CSC matrices and the triplet-based
//!   [`SparseBuilder`] used by the formulations,
//! * [`revised`] — the default engine: a sparse revised simplex with
//!   pluggable basis factorizations, periodic refactorization and
//!   [warm starts](revised::WarmStartCache),
//! * [`basis`] — the [`BasisFactorization`]
//!   engines behind the revised simplex: sparse LU with Forrest–Tomlin
//!   updates (default) and the product-form eta file (`PM_LP_BASIS=eta`),
//! * [`presolve`] — optional problem reductions (empty/singleton rows,
//!   fixed and implied-free columns) with full primal/dual postsolve
//!   recovery (`PM_LP_PRESOLVE=1`),
//! * [`simplex`] — the dense two-phase tableau simplex, kept as the
//!   `PM_LP_SOLVER=dense` fallback and as the differential-testing oracle,
//! * [`solver`] — engine selection (`PM_LP_SOLVER`,
//!   [`set_default_solver`]; `PM_LP_BASIS`,
//!   [`set_default_basis`]) and deterministic work caps
//!   ([`SolveBudget`], `PM_LP_BUDGET`),
//! * [`chaos`] — seeded fault injection (`PM_LP_CHAOS`) driving the
//!   recovery ladder (see [`revised::RecoveryRung`]) for self-healing
//!   tests and the chaos benchmark.
//!
//! Both engines share the anti-degeneracy toolkit (seeded shadow-RHS
//! perturbation, Dantzig→Bland stall switching, seeded ratio-test
//! tie-breaks), so every solve is bit-reproducible. Set `PM_LP_STATS=1` for
//! per-solve diagnostics on stderr.
//!
//! ```
//! use pm_lp::problem::{LpProblem, Objective, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut lp = LpProblem::new(Objective::Maximize);
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.set_objective_coeff(x, 3.0);
//! lp.set_objective_coeff(y, 2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-9);
//! assert!((sol.value(x) - 2.0).abs() < 1e-9);
//! assert!((sol.value(y) - 2.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod basis;
pub mod chaos;
pub mod presolve;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod solver;
pub mod sparse;

pub use basis::{BasisFactorization, EtaBasis, LuBasis};
pub use chaos::{
    counters as chaos_counters, reset_counters as reset_chaos_counters, set_chaos, with_chaos,
    ChaosConfig, ChaosCounters, ChaosFault,
};
pub use presolve::Presolved;
pub use problem::{LpError, LpProblem, LpSolution, Objective, Relation, VarId};
pub use revised::{
    resolve_with_bounds, resolve_with_bounds_budgeted, solve_with_hint_budgeted, Basis,
    BoundsOverlay, RecoveryRung, RecoveryTrigger, SolveOutcome, SolveStats, WarmStartCache,
    WarmStatus,
};
pub use solver::{
    default_basis, default_budget, default_solver, set_default_basis, set_default_solver,
    stats_enabled, BasisKind, SolveBudget, SolverKind,
};
pub use sparse::{CscMatrix, SparseBuilder};
