//! # pm-lp
//!
//! A self-contained linear-programming toolkit, written from scratch for the
//! pipelined-multicast reproduction: the paper's bounds (`Multicast-LB`,
//! `Multicast-UB`, `Broadcast-EB`, `MulticastMultiSource-UB`) and the exact
//! tree-packing baseline are all linear programs, and this crate is the only
//! LP dependency of the workspace.
//!
//! * [`problem`] — an [`LpProblem`](problem::LpProblem) model builder
//!   (non-negative variables, `≤ / ≥ / =` constraints, maximize or minimize),
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's rule
//!   as an anti-cycling fallback.
//!
//! The solver favours robustness over raw speed: it is a textbook tableau
//! method tuned for the moderately sized LPs produced by the multicast
//! formulations (a few thousand rows and columns).
//!
//! ```
//! use pm_lp::problem::{LpProblem, Objective, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut lp = LpProblem::new(Objective::Maximize);
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.set_objective_coeff(x, 3.0);
//! lp.set_objective_coeff(y, 2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-9);
//! assert!((sol.value(x) - 2.0).abs() < 1e-9);
//! assert!((sol.value(y) - 2.0).abs() < 1e-9);
//! ```

pub mod problem;
pub mod simplex;

pub use problem::{LpError, LpProblem, LpSolution, Objective, Relation, VarId};
