//! Differential tests: the sparse revised simplex and the dense tableau
//! simplex must agree on status and objective for every random LP, including
//! the degenerate generators and Beale's cycling example that exercised the
//! PR 1 anti-degeneracy work. The dense engine is the oracle; any
//! disagreement beyond 1e-6 is an engine bug, not an alternate optimum
//! (optimal *objectives* are unique even when optimal vertices are not).

use pm_lp::{LpError, LpProblem, Objective, Relation, SolverKind, VarId};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-6;

/// Both engines on one problem: statuses must match, objectives must agree
/// within `TOL`, and each returned point must be feasible for the model.
fn assert_engines_agree(lp: &LpProblem) -> Result<(), TestCaseError> {
    let dense = lp.solve_with(SolverKind::Dense);
    let revised = lp.solve_with(SolverKind::Revised);
    match (&dense, &revised) {
        (Ok(d), Ok(r)) => {
            prop_assert!(
                (d.objective - r.objective).abs() <= TOL * (1.0 + d.objective.abs()),
                "objectives disagree: dense {} vs revised {}",
                d.objective,
                r.objective
            );
            prop_assert!(lp.is_feasible(d.values(), TOL), "dense point infeasible");
            prop_assert!(lp.is_feasible(r.values(), TOL), "revised point infeasible");
        }
        (Err(de), Err(re)) => {
            prop_assert_eq!(de, re);
        }
        _ => {
            prop_assert!(
                false,
                "status mismatch: dense {:?} vs revised {:?}",
                dense,
                revised
            );
        }
    }
    Ok(())
}

/// A random LP over box-bounded variables plus general `Le`/`Ge`/`Eq` rows.
/// The box keeps it bounded; feasibility is not guaranteed, which is the
/// point — infeasible instances must be flagged identically by both engines.
fn random_lp(num_vars: usize, num_cons: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(if rng.gen_bool(0.5) {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let vars: Vec<VarId> = (0..num_vars)
        .map(|i| lp.add_var(&format!("x{i}")))
        .collect();
    for &v in &vars {
        lp.set_objective_coeff(v, rng.gen_range(-3.0..3.0));
        lp.add_constraint(vec![(v, 1.0)], Relation::Le, rng.gen_range(0.5..5.0));
    }
    for _ in 0..num_cons {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.6) {
                terms.push((v, rng.gen_range(-2.0..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let relation = match rng.gen_range(0..3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let rhs = rng.gen_range(-2.0..4.0);
        lp.add_constraint(terms, relation, rhs);
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_agree_on_random_lps(
        num_vars in 1usize..7,
        num_cons in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let lp = random_lp(num_vars, num_cons, seed);
        assert_engines_agree(&lp)?;
    }

    // The PR 1 degenerate generator: duplicated (verbatim and positively
    // scaled) constraints make the optimal vertex over-determined — exactly
    // where pivot paths diverge most between engines, while the optimum
    // must not move.
    #[test]
    fn engines_agree_on_degenerate_duplicated_lps(
        num_vars in 1usize..5,
        num_cons in 1usize..5,
        seed in 0u64..1_000_000,
        copies in 1usize..4,
    ) {
        let base = random_lp(num_vars, num_cons, seed);
        let mut degen = base.clone();
        for constraint in base.constraints().to_vec() {
            for copy in 0..copies {
                let scale = 1.0 + copy as f64;
                let terms: Vec<(VarId, f64)> = constraint
                    .terms
                    .iter()
                    .map(|&(v, c)| (v, c * scale))
                    .collect();
                degen.add_constraint(terms, constraint.relation, constraint.rhs * scale);
            }
        }
        assert_engines_agree(&degen)?;
    }

    // Dual differential test: the revised engine's duals must certify the
    // dense oracle's primal objective (strong duality against the *exact*
    // right-hand sides — the shadow-RHS perturbation must never leak into
    // the prices) and must be dual feasible (no structural column prices as
    // improving).
    #[test]
    fn revised_duals_certify_the_dense_objective(
        num_vars in 1usize..7,
        num_cons in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let lp = random_lp(num_vars, num_cons, seed);
        let (Ok(dense), Ok(revised)) =
            (lp.solve_with(SolverKind::Dense), lp.solve_with(SolverKind::Revised))
        else {
            return Ok(()); // infeasible/unbounded: no duals to check
        };
        let duals = revised.duals();
        prop_assert_eq!(duals.len(), lp.num_constraints());
        // Strong duality: Σ y_i b_i = optimal objective.
        let dual_obj: f64 = duals
            .iter()
            .zip(lp.constraints())
            .map(|(y, c)| y * c.rhs)
            .sum();
        prop_assert!(
            (dual_obj - dense.objective).abs() <= TOL * (1.0 + dense.objective.abs()),
            "strong duality violated: dual objective {} vs dense primal {}",
            dual_obj,
            dense.objective
        );
        // Dual feasibility: reduced costs have the optimal sign in the
        // problem's own sense.
        let maximize = matches!(lp.objective(), Objective::Maximize);
        for j in 0..lp.num_vars() {
            let var = VarId(j);
            let mut rc = lp.objective_coeff(var);
            for (y, c) in duals.iter().zip(lp.constraints()) {
                for &(v, a) in &c.terms {
                    if v == var {
                        rc -= y * a;
                    }
                }
            }
            if maximize {
                prop_assert!(rc <= TOL, "column {} prices as improving: rc {}", j, rc);
            } else {
                prop_assert!(rc >= -TOL, "column {} prices as improving: rc {}", j, rc);
            }
        }
    }

    // Unboundedness must be detected identically: a free variable with a
    // favourable objective coefficient and no upper bound.
    #[test]
    fn engines_agree_on_unbounded_lps(
        num_vars in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<VarId> = (0..num_vars)
            .map(|i| lp.add_var(&format!("x{i}")))
            .collect();
        for &v in &vars {
            lp.set_objective_coeff(v, rng.gen_range(-1.0..1.0));
            lp.add_constraint(vec![(v, 1.0)], Relation::Le, rng.gen_range(0.5..3.0));
        }
        let free = lp.add_var("free");
        lp.set_objective_coeff(free, rng.gen_range(0.5..3.0));
        prop_assert_eq!(lp.solve_with(SolverKind::Dense), Err(LpError::Unbounded));
        prop_assert_eq!(lp.solve_with(SolverKind::Revised), Err(LpError::Unbounded));
    }
}

/// Textbook duals: max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 has the
/// unique optimal duals (0, 3/2, 1) — and a warm-started re-solve must
/// report the same prices.
#[test]
fn revised_duals_match_the_textbook_values() {
    let mut lp = LpProblem::new(Objective::Maximize);
    let x = lp.add_var("x");
    let y = lp.add_var("y");
    lp.set_objective_coeff(x, 3.0);
    lp.set_objective_coeff(y, 5.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
    lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
    lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
    let cold = pm_lp::revised::solve_with_hint(&lp, None).unwrap();
    let warm = pm_lp::revised::solve_with_hint(&lp, Some(&cold.basis)).unwrap();
    for sol in [&cold.solution, &warm.solution] {
        let duals = sol.duals();
        assert!((duals[0] - 0.0).abs() < 1e-9, "dual 0: {}", duals[0]);
        assert!((duals[1] - 1.5).abs() < 1e-9, "dual 1: {}", duals[1]);
        assert!((duals[2] - 1.0).abs() < 1e-9, "dual 2: {}", duals[2]);
    }
    // The dense oracle reports no duals — the revised engine is the dual
    // source of the workspace.
    assert!(lp.solve_with(SolverKind::Dense).unwrap().duals().is_empty());
}

/// Beale's classic cycling LP: both engines must terminate at the known
/// optimum of −0.05.
#[test]
fn engines_agree_on_beales_example() {
    let mut lp = LpProblem::new(Objective::Minimize);
    let x1 = lp.add_var("x1");
    let x2 = lp.add_var("x2");
    let x3 = lp.add_var("x3");
    let x4 = lp.add_var("x4");
    lp.set_objective_coeff(x1, -0.75);
    lp.set_objective_coeff(x2, 150.0);
    lp.set_objective_coeff(x3, -0.02);
    lp.set_objective_coeff(x4, 6.0);
    lp.add_constraint(
        vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    );
    lp.add_constraint(
        vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    );
    lp.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0);
    for solver in [SolverKind::Dense, SolverKind::Revised] {
        let sol = lp.solve_with(solver).expect("Beale's example must solve");
        assert!(
            (sol.objective - (-0.05)).abs() < 1e-9,
            "{solver:?}: objective {} != -0.05",
            sol.objective
        );
    }
}

/// A structured flow-shaped instance (transportation LP): the kind of
/// network matrix the multicast formulations produce.
#[test]
fn engines_agree_on_a_transportation_lp() {
    let supply = [20.0, 30.0, 25.0];
    let demand = [10.0, 25.0, 20.0, 20.0];
    let cost = [
        [2.0, 3.0, 1.0, 4.0],
        [5.0, 1.0, 3.0, 2.0],
        [2.0, 2.0, 2.0, 6.0],
    ];
    let mut lp = LpProblem::new(Objective::Minimize);
    let mut vars = vec![];
    for (i, cost_row) in cost.iter().enumerate() {
        let mut row = vec![];
        for (j, &c) in cost_row.iter().enumerate() {
            let v = lp.add_var(&format!("x{i}{j}"));
            lp.set_objective_coeff(v, c);
            row.push(v);
        }
        vars.push(row);
    }
    for (i, &s) in supply.iter().enumerate() {
        let terms = (0..4).map(|j| (vars[i][j], 1.0)).collect();
        lp.add_constraint(terms, Relation::Le, s);
    }
    for (j, &d) in demand.iter().enumerate() {
        let terms = (0..3).map(|i| (vars[i][j], 1.0)).collect();
        lp.add_constraint(terms, Relation::Eq, d);
    }
    let dense = lp.solve_with(SolverKind::Dense).unwrap();
    let revised = lp.solve_with(SolverKind::Revised).unwrap();
    assert!((dense.objective - 120.0).abs() < 1e-6);
    assert!((revised.objective - 120.0).abs() < 1e-6);
}
