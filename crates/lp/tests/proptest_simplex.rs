//! Property-based tests for the simplex solver: on random bounded LPs the
//! returned point must be feasible and at least as good as any sampled
//! feasible point.

use pm_lp::{LpError, LpProblem, Objective, Relation, VarId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random LP with box-bounded variables (so it is never unbounded
/// and always feasible: the origin satisfies all `<=` constraints with
/// non-negative rhs).
fn random_bounded_lp(
    num_vars: usize,
    num_cons: usize,
    seed: u64,
) -> (LpProblem, Vec<VarId>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<VarId> = (0..num_vars).map(|i| lp.add_var(&format!("x{i}"))).collect();
    let mut bounds = Vec::with_capacity(num_vars);
    for &v in &vars {
        lp.set_objective_coeff(v, rng.gen_range(-2.0..4.0));
        let ub = rng.gen_range(0.5..5.0);
        lp.add_constraint(vec![(v, 1.0)], Relation::Le, ub);
        bounds.push(ub);
    }
    for _ in 0..num_cons {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.7) {
                terms.push((v, rng.gen_range(0.1..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = rng.gen_range(0.5..6.0);
        lp.add_constraint(terms, Relation::Le, rhs);
    }
    (lp, vars, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solution_is_feasible_and_dominates_random_points(
        num_vars in 1usize..6,
        num_cons in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let (lp, _vars, bounds) = random_bounded_lp(num_vars, num_cons, seed);
        let sol = lp.solve().expect("bounded LP with feasible origin must solve");
        prop_assert!(lp.is_feasible(sol.values(), 1e-6));

        // The optimum must dominate a handful of random feasible points
        // obtained by rejection sampling inside the variable boxes.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut tried = 0;
        let mut accepted = 0;
        while tried < 2_000 && accepted < 20 {
            tried += 1;
            let candidate: Vec<f64> = bounds.iter().map(|&b| rng.gen_range(0.0..b)).collect();
            if lp.is_feasible(&candidate, 1e-9) {
                accepted += 1;
                let value = lp.objective_value_at(&candidate);
                prop_assert!(value <= sol.objective + 1e-6,
                    "sampled feasible point beats the 'optimum': {value} > {}", sol.objective);
            }
        }
    }

    #[test]
    fn scaling_the_objective_scales_the_optimum(
        num_vars in 1usize..5,
        seed in 0u64..1_000_000,
        scale in 1.0f64..10.0,
    ) {
        let (lp, vars, _) = random_bounded_lp(num_vars, 3, seed);
        let base = lp.solve().unwrap();
        let mut scaled = lp.clone();
        for &v in &vars {
            let c = scaled.objective_coeff(v);
            scaled.set_objective_coeff(v, c * scale);
        }
        let scaled_sol = scaled.solve().unwrap();
        prop_assert!((scaled_sol.objective - base.objective * scale).abs()
            <= 1e-6 * (1.0 + base.objective.abs() * scale));
    }
}

#[test]
fn infeasible_system_is_reported_infeasible() {
    let mut lp = LpProblem::new(Objective::Minimize);
    let x = lp.add_var("x");
    let y = lp.add_var("y");
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
    assert_eq!(lp.solve(), Err(LpError::Infeasible));
}
