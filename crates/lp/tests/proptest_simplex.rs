//! Property-based tests for the simplex solver: on random bounded LPs the
//! returned point must be feasible and at least as good as any sampled
//! feasible point.

use pm_lp::{LpError, LpProblem, Objective, Relation, VarId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random LP with box-bounded variables (so it is never unbounded
/// and always feasible: the origin satisfies all `<=` constraints with
/// non-negative rhs).
fn random_bounded_lp(
    num_vars: usize,
    num_cons: usize,
    seed: u64,
) -> (LpProblem, Vec<VarId>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<VarId> = (0..num_vars)
        .map(|i| lp.add_var(&format!("x{i}")))
        .collect();
    let mut bounds = Vec::with_capacity(num_vars);
    for &v in &vars {
        lp.set_objective_coeff(v, rng.gen_range(-2.0..4.0));
        let ub = rng.gen_range(0.5..5.0);
        lp.add_constraint(vec![(v, 1.0)], Relation::Le, ub);
        bounds.push(ub);
    }
    for _ in 0..num_cons {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.7) {
                terms.push((v, rng.gen_range(0.1..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = rng.gen_range(0.5..6.0);
        lp.add_constraint(terms, Relation::Le, rhs);
    }
    (lp, vars, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solution_is_feasible_and_dominates_random_points(
        num_vars in 1usize..6,
        num_cons in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let (lp, _vars, bounds) = random_bounded_lp(num_vars, num_cons, seed);
        let sol = lp.solve().expect("bounded LP with feasible origin must solve");
        prop_assert!(lp.is_feasible(sol.values(), 1e-6));

        // The optimum must dominate a handful of random feasible points
        // obtained by rejection sampling inside the variable boxes.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut tried = 0;
        let mut accepted = 0;
        while tried < 2_000 && accepted < 20 {
            tried += 1;
            let candidate: Vec<f64> = bounds.iter().map(|&b| rng.gen_range(0.0..b)).collect();
            if lp.is_feasible(&candidate, 1e-9) {
                accepted += 1;
                let value = lp.objective_value_at(&candidate);
                prop_assert!(value <= sol.objective + 1e-6,
                    "sampled feasible point beats the 'optimum': {value} > {}", sol.objective);
            }
        }
    }

    #[test]
    fn scaling_the_objective_scales_the_optimum(
        num_vars in 1usize..5,
        seed in 0u64..1_000_000,
        scale in 1.0f64..10.0,
    ) {
        let (lp, vars, _) = random_bounded_lp(num_vars, 3, seed);
        let base = lp.solve().unwrap();
        let mut scaled = lp.clone();
        for &v in &vars {
            let c = scaled.objective_coeff(v);
            scaled.set_objective_coeff(v, c * scale);
        }
        let scaled_sol = scaled.solve().unwrap();
        prop_assert!((scaled_sol.objective - base.objective * scale).abs()
            <= 1e-6 * (1.0 + base.objective.abs() * scale));
    }
}

#[test]
fn infeasible_system_is_reported_infeasible() {
    let mut lp = LpProblem::new(Objective::Minimize);
    let x = lp.add_var("x");
    let y = lp.add_var("y");
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
    assert_eq!(lp.solve(), Err(LpError::Infeasible));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Degenerate pivots: duplicating constraints (verbatim and scaled) makes
    // the optimal vertex over-determined, which is exactly the situation
    // where a naive pivot rule can stall or cycle. The solver must still
    // terminate (Bland's rule) and must return the same optimum as the
    // clean formulation.
    #[test]
    fn degenerate_duplicated_constraints_keep_the_optimum(
        num_vars in 1usize..5,
        num_cons in 1usize..5,
        seed in 0u64..1_000_000,
        copies in 1usize..4,
    ) {
        let (lp, _vars, _bounds) = random_bounded_lp(num_vars, num_cons, seed);
        let base = lp.solve().expect("clean bounded LP must solve");

        let mut degen = lp.clone();
        for constraint in lp.constraints().to_vec() {
            for copy in 0..copies {
                // Verbatim duplicates plus positively scaled duplicates:
                // both describe the same halfspace, so the optimum must not
                // move, but each adds a redundant basis candidate.
                let scale = 1.0 + copy as f64;
                let terms: Vec<(VarId, f64)> = constraint
                    .terms
                    .iter()
                    .map(|&(v, c)| (v, c * scale))
                    .collect();
                degen.add_constraint(terms, constraint.relation, constraint.rhs * scale);
            }
        }

        let sol = degen
            .solve()
            .expect("degenerate LP must still terminate under Bland's rule");
        prop_assert!(
            (sol.objective - base.objective).abs() <= 1e-6 * (1.0 + base.objective.abs()),
            "degenerate optimum {} drifted from clean optimum {}",
            sol.objective,
            base.objective
        );
        prop_assert!(degen.is_feasible(sol.values(), 1e-6));
        prop_assert!(lp.is_feasible(sol.values(), 1e-6));
    }

    // Unbounded detection: a maximized variable with a positive objective
    // coefficient and no upper-bounding constraint makes the LP unbounded
    // no matter what the bounded part looks like.
    #[test]
    fn unbounded_objective_is_detected(
        num_vars in 1usize..5,
        num_cons in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let (mut lp, _vars, _bounds) = random_bounded_lp(num_vars, num_cons, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
        let free = lp.add_var("free");
        lp.set_objective_coeff(free, rng.gen_range(0.5..3.0));
        if rng.gen_bool(0.5) {
            // A lower bound on the free variable must not fool the solver
            // into thinking the ray is blocked.
            lp.add_constraint(vec![(free, 1.0)], Relation::Ge, rng.gen_range(0.1..1.0));
        }
        prop_assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }
}

/// Beale's classic cycling example: a naive most-negative-reduced-cost rule
/// cycles forever on this LP; Bland's fallback must terminate at the known
/// optimum of -0.05.
#[test]
fn beale_cycling_example_terminates_at_known_optimum() {
    let mut lp = LpProblem::new(Objective::Minimize);
    let x1 = lp.add_var("x1");
    let x2 = lp.add_var("x2");
    let x3 = lp.add_var("x3");
    let x4 = lp.add_var("x4");
    lp.set_objective_coeff(x1, -0.75);
    lp.set_objective_coeff(x2, 150.0);
    lp.set_objective_coeff(x3, -0.02);
    lp.set_objective_coeff(x4, 6.0);
    lp.add_constraint(
        vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    );
    lp.add_constraint(
        vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    );
    lp.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0);
    let sol = lp.solve().expect("Beale's example must not cycle");
    assert!(
        (sol.objective - (-0.05)).abs() < 1e-9,
        "objective {} != -0.05",
        sol.objective
    );
    assert!((sol.value(x3) - 1.0).abs() < 1e-9);
}
