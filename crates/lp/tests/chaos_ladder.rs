//! Chaos-harness property tests for the revised engine's recovery ladder.
//!
//! Every injected fault (`singular` basis, poisoned warm-start hint,
//! pricing stall, NaN injection) must end in a dense-differentially-verified
//! optimum, a budget-degraded anytime solution, or a structured [`LpError`]
//! — never a panic. And recovery must be byte-deterministic: the same seed
//! and fault always walk the same rung sequence and return the same
//! solution, regardless of thread or basis backend.

use pm_lp::revised::{resolve_with_bounds, solve_with_hint, BoundsOverlay, RecoveryRung};
use pm_lp::{
    solve_with_hint_budgeted, with_chaos, BasisKind, ChaosConfig, ChaosFault, LpProblem, Objective,
    Relation, SolveBudget, SolverKind, VarId,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

const TOL: f64 = 1e-6;

/// `set_default_basis` is process-global; tests in this binary run in
/// parallel, so basis-flipping tests hold this lock.
static BASIS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    BASIS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const FAULTS: [ChaosFault; 4] = [
    ChaosFault::SingularBasis,
    ChaosFault::PoisonHint,
    ChaosFault::PricingStall,
    ChaosFault::NanInjection,
];

/// A random always-feasible box-bounded LP (the origin is feasible).
fn random_bounded_lp(num_vars: usize, num_cons: usize, seed: u64) -> (LpProblem, Vec<VarId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<VarId> = (0..num_vars)
        .map(|i| lp.add_var(&format!("x{i}")))
        .collect();
    for &v in &vars {
        lp.set_objective_coeff(v, rng.gen_range(-2.0..4.0));
        lp.add_constraint(vec![(v, 1.0)], Relation::Le, rng.gen_range(0.5..5.0));
    }
    for _ in 0..num_cons {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.7) {
                terms.push((v, rng.gen_range(0.1..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        lp.add_constraint(terms, Relation::Le, rng.gen_range(0.5..6.0));
    }
    (lp, vars)
}

/// Fingerprint of a solve outcome that must be bit-identical between
/// deterministic reruns: exact value bits plus the recovery telemetry.
fn fingerprint(
    out: &Result<pm_lp::SolveOutcome, pm_lp::LpError>,
) -> Result<(u64, Vec<u64>, usize, RecoveryRung, bool), pm_lp::LpError> {
    out.as_ref()
        .map(|o| {
            (
                o.solution.objective.to_bits(),
                o.solution.values().iter().map(|v| v.to_bits()).collect(),
                o.stats.attempts,
                o.stats.rung,
                o.stats.degraded,
            )
        })
        .map_err(Clone::clone)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline chaos property: under every single-fault config and the
    /// all-faults config, cold and warm-chained solves never panic, and a
    /// successful non-degraded solve matches the dense tableau oracle.
    #[test]
    fn injected_faults_recover_to_the_dense_verified_optimum(
        num_vars in 1usize..6,
        num_cons in 0usize..6,
        lp_seed in 0u64..100_000,
        chaos_seed in 0u64..1_000,
    ) {
        let (lp, _) = random_bounded_lp(num_vars, num_cons, lp_seed);
        let dense = lp.solve_with(SolverKind::Dense)
            .expect("bounded LP with feasible origin must solve");

        let mut configs: Vec<ChaosConfig> =
            FAULTS.iter().map(|&f| ChaosConfig::only(f, chaos_seed)).collect();
        configs.push(ChaosConfig::all(chaos_seed));

        for cfg in configs {
            let solved = catch_unwind(AssertUnwindSafe(|| {
                with_chaos(Some(cfg), || {
                    let cold = solve_with_hint(&lp, None)?;
                    // Warm chain: re-solve from the cold basis so the
                    // hint-poisoning fault has a hint to corrupt.
                    let warm = solve_with_hint(&lp, Some(&cold.basis))?;
                    Ok::<_, pm_lp::LpError>((cold, warm))
                })
            }));
            let outcome = match solved {
                Ok(outcome) => outcome,
                Err(_) => return Err(TestCaseError {
                    message: format!("panic escaped the recovery ladder under {cfg:?}"),
                }),
            };
            // Bounded + feasible: a structured error is not acceptable
            // here, the ladder must actually recover.
            let (cold, warm) = outcome.expect("recoverable fault must not surface an error");
            for out in [&cold, &warm] {
                prop_assert!(!out.solution.degraded(), "no budget set, must not degrade");
                prop_assert!(
                    (out.solution.objective - dense.objective).abs()
                        <= TOL * (1.0 + dense.objective.abs()),
                    "recovered objective {} disagrees with dense oracle {} under {cfg:?}",
                    out.solution.objective,
                    dense.objective,
                );
                prop_assert!(lp.is_feasible(out.solution.values(), TOL));
            }
        }
    }

    /// Recovery-ladder determinism: the same seed and fault produce the
    /// same rung walk (attempts, winning rung, telemetry) and bit-identical
    /// solutions — on this thread, and on a freshly spawned one.
    #[test]
    fn ladder_walk_is_deterministic_across_runs_and_threads(
        num_vars in 1usize..6,
        num_cons in 0usize..6,
        lp_seed in 0u64..100_000,
        chaos_seed in 0u64..1_000,
        fault_idx in 0usize..5,
    ) {
        let (lp, _) = random_bounded_lp(num_vars, num_cons, lp_seed);
        let cfg = if fault_idx < 4 {
            ChaosConfig::only(FAULTS[fault_idx], chaos_seed)
        } else {
            ChaosConfig::all(chaos_seed)
        };
        let run = {
            let lp = lp.clone();
            move || {
                with_chaos(Some(cfg), || {
                    let cold = solve_with_hint(&lp, None);
                    let hint = cold.as_ref().ok().map(|o| o.basis.clone());
                    let warm = solve_with_hint(&lp, hint.as_ref());
                    (fingerprint(&cold), fingerprint(&warm))
                })
            }
        };
        let first = run();
        let second = run();
        prop_assert!(first == second, "rerun diverged under {:?}", cfg);
        let threaded = std::thread::spawn(run).join().expect("no panics on worker threads");
        prop_assert!(first == threaded, "spawned thread diverged under {:?}", cfg);
    }

    /// The rung walk does not depend on the basis backend: both defaults
    /// take the same number of attempts to the same rung and agree on the
    /// optimum (bit-identical values are *not* required across backends —
    /// they walk different pivot paths).
    #[test]
    fn ladder_walk_is_basis_independent(
        num_vars in 1usize..5,
        num_cons in 0usize..5,
        lp_seed in 0u64..100_000,
        chaos_seed in 0u64..500,
    ) {
        let (lp, _) = random_bounded_lp(num_vars, num_cons, lp_seed);
        let cfg = ChaosConfig::all(chaos_seed);
        let _guard = lock();
        let mut runs = Vec::new();
        for kind in [BasisKind::Lu, BasisKind::Eta] {
            pm_lp::set_default_basis(Some(kind));
            let out = with_chaos(Some(cfg), || solve_with_hint(&lp, None));
            pm_lp::set_default_basis(None);
            let out = out.expect("bounded feasible LP must recover");
            runs.push((out.stats.attempts, out.stats.rung, out.solution.objective));
        }
        prop_assert!(runs[0].0 == runs[1].0, "attempt counts diverged across backends");
        prop_assert!(runs[0].1 == runs[1].1, "winning rung diverged across backends");
        prop_assert!(
            (runs[0].2 - runs[1].2).abs() <= TOL * (1.0 + runs[0].2.abs()),
            "objectives diverged across backends: {} vs {}", runs[0].2, runs[1].2
        );
    }

    /// Degradable budgets: an exhausted phase 2 yields a primal-feasible
    /// anytime point flagged `degraded` whose objective never beats the
    /// optimum; a generous budget reproduces the unbudgeted solve exactly.
    #[test]
    fn exhausted_budgets_degrade_to_feasible_anytime_points(
        num_vars in 2usize..7,
        num_cons in 2usize..7,
        lp_seed in 0u64..100_000,
    ) {
        let (lp, _) = random_bounded_lp(num_vars, num_cons, lp_seed);
        let full = solve_with_hint(&lp, None).expect("bounded feasible LP must solve");

        let generous = solve_with_hint_budgeted(&lp, None, Some(SolveBudget::pivots(1_000_000)))
            .expect("generous budget must not bite");
        prop_assert!(!generous.solution.degraded());
        prop_assert!(
            generous.solution.objective.to_bits() == full.solution.objective.to_bits(),
            "a budget that never binds must not change the solve"
        );

        // Tighten the budget one pivot at a time: every outcome must be
        // either a degraded-but-feasible anytime point that the optimum
        // dominates, or a structured budget error from phase 1.
        for max_pivots in 0..full.stats.phase1_pivots + full.stats.phase2_pivots + 1 {
            let out = solve_with_hint_budgeted(
                &lp, None, Some(SolveBudget::pivots(max_pivots as u64)));
            match out {
                Ok(o) => {
                    prop_assert!(lp.is_feasible(o.solution.values(), TOL));
                    prop_assert!(
                        o.solution.objective <= full.solution.objective + TOL,
                        "anytime point beats the optimum: {} > {}",
                        o.solution.objective, full.solution.objective
                    );
                    if !o.solution.degraded() {
                        prop_assert!(
                            o.solution.objective.to_bits()
                                == full.solution.objective.to_bits(),
                            "non-degraded budgeted solve must be the optimum"
                        );
                    }
                }
                Err(e) => prop_assert_eq!(e, pm_lp::LpError::IterationLimit),
            }
        }
    }
}

/// Structured verdicts pass through the ladder untouched: chaos cannot turn
/// an infeasible model into anything else, and never into a panic.
#[test]
fn structured_verdicts_survive_chaos() {
    let mut lp = LpProblem::new(Objective::Minimize);
    let x = lp.add_var("x");
    let y = lp.add_var("y");
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
    for seed in 0..64 {
        let out = with_chaos(Some(ChaosConfig::all(seed)), || solve_with_hint(&lp, None));
        assert_eq!(out.unwrap_err(), pm_lp::LpError::Infeasible);
    }
}

/// Overlay re-solves (the masked-template fast path) under chaos: the
/// warm-chained, bounds-repaired path must recover like the plain one.
#[test]
fn overlay_resolves_recover_under_chaos() {
    let (lp, vars) = random_bounded_lp(5, 4, 77);
    let cold = resolve_with_bounds(&lp, &BoundsOverlay::default(), None).unwrap();
    let mut overlay = BoundsOverlay::default();
    overlay.fix_zero.push(vars[0]);
    let reference = resolve_with_bounds(&lp, &overlay, None).unwrap();
    for seed in 0..64 {
        let out = with_chaos(Some(ChaosConfig::all(seed)), || {
            resolve_with_bounds(&lp, &overlay, Some(&cold.basis))
        });
        let out = out.expect("overlay solve must recover under chaos");
        assert!(
            (out.solution.objective - reference.solution.objective).abs()
                <= TOL * (1.0 + reference.solution.objective.abs()),
            "seed {seed}: {} vs {}",
            out.solution.objective,
            reference.solution.objective
        );
    }
}

/// A healthy solve reports the telemetry of a first-attempt win.
#[test]
fn healthy_solves_report_first_rung() {
    let (lp, _) = random_bounded_lp(4, 3, 5);
    let out = solve_with_hint(&lp, None).unwrap();
    assert_eq!(out.stats.attempts, 1);
    assert_eq!(out.stats.rung, RecoveryRung::First);
    assert_eq!(out.stats.trigger, None);
    assert!(!out.stats.degraded);
}
