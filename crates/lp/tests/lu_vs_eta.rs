//! Differential tests between the two basis factorizations of the revised
//! engine: sparse LU with Forrest–Tomlin updates (plus devex pricing) versus
//! the product-form eta file (plus Dantzig pricing). The engines walk
//! different pivot paths, but optimal *objectives* are unique: any
//! disagreement beyond 1e-6 is a factorization or pricing bug, not an
//! alternate optimum. Warm-chained re-solves under bounds overlays are the
//! adversarial case — Forrest–Tomlin updates then run on a basis installed
//! by a warm start rather than built by the factorization's own pivot walk.

use pm_lp::revised::{resolve_with_bounds, Basis, BoundsOverlay};
use pm_lp::{BasisKind, LpError, LpProblem, LpSolution, Objective, Relation, VarId};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard};

const TOL: f64 = 1e-6;

/// `set_default_basis` is process-global; the tests in this binary run in
/// parallel, so every test holds this lock while flipping the default.
static BASIS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    BASIS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_basis<T>(kind: BasisKind, f: impl FnOnce() -> T) -> T {
    pm_lp::set_default_basis(Some(kind));
    let out = f();
    pm_lp::set_default_basis(None);
    out
}

fn assert_bases_agree(lp: &LpProblem) -> Result<(), TestCaseError> {
    let _guard = lock();
    let eta = with_basis(BasisKind::Eta, || lp.solve());
    let lu = with_basis(BasisKind::Lu, || lp.solve());
    match (&eta, &lu) {
        (Ok(e), Ok(l)) => {
            prop_assert!(
                (e.objective - l.objective).abs() <= TOL * (1.0 + e.objective.abs()),
                "objectives disagree: eta {} vs lu {}",
                e.objective,
                l.objective
            );
            prop_assert!(lp.is_feasible(e.values(), TOL), "eta point infeasible");
            prop_assert!(lp.is_feasible(l.values(), TOL), "lu point infeasible");
            check_duals(lp, e)?;
            check_duals(lp, l)?;
        }
        (Err(ee), Err(le)) => {
            prop_assert_eq!(ee, le);
        }
        _ => {
            prop_assert!(false, "status mismatch: eta {:?} vs lu {:?}", eta, lu);
        }
    }
    Ok(())
}

/// Duals are not unique on degenerate problems, so the differential check is
/// certificate-based per engine: strong duality against the exact RHS plus
/// dual feasibility, rather than eta-vs-lu equality.
fn check_duals(lp: &LpProblem, sol: &LpSolution) -> Result<(), TestCaseError> {
    let duals = sol.duals();
    prop_assert_eq!(duals.len(), lp.num_constraints());
    let dual_obj: f64 = duals
        .iter()
        .zip(lp.constraints())
        .map(|(y, c)| y * c.rhs)
        .sum();
    prop_assert!(
        (dual_obj - sol.objective).abs() <= TOL * (1.0 + sol.objective.abs()),
        "strong duality violated: dual objective {} vs primal {}",
        dual_obj,
        sol.objective
    );
    let maximize = matches!(lp.objective(), Objective::Maximize);
    for j in 0..lp.num_vars() {
        let var = VarId(j);
        if lp.is_fixed(var) {
            continue;
        }
        let mut rc = lp.objective_coeff(var);
        for (y, c) in duals.iter().zip(lp.constraints()) {
            for &(v, a) in &c.terms {
                if v == var {
                    rc -= y * a;
                }
            }
        }
        if maximize {
            prop_assert!(rc <= TOL, "column {} prices as improving: rc {}", j, rc);
        } else {
            prop_assert!(rc >= -TOL, "column {} prices as improving: rc {}", j, rc);
        }
    }
    Ok(())
}

/// Same generator family as `diff_engines.rs`: box-bounded variables plus
/// general rows; feasibility not guaranteed on purpose.
fn random_lp(num_vars: usize, num_cons: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(if rng.gen_bool(0.5) {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let vars: Vec<VarId> = (0..num_vars)
        .map(|i| lp.add_var(&format!("x{i}")))
        .collect();
    for &v in &vars {
        lp.set_objective_coeff(v, rng.gen_range(-3.0..3.0));
        lp.add_constraint(vec![(v, 1.0)], Relation::Le, rng.gen_range(0.5..5.0));
    }
    for _ in 0..num_cons {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.6) {
                terms.push((v, rng.gen_range(-2.0..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let relation = match rng.gen_range(0..3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let rhs = rng.gen_range(-2.0..4.0);
        lp.add_constraint(terms, relation, rhs);
    }
    lp
}

/// One engine's walk down a warm chain: solve cold, then repeatedly re-solve
/// under random overlays (masked-style zero-fixes plus RHS overrides),
/// feeding each accepted basis forward as the next hint. Returns the status
/// or objective at every step.
fn warm_chain(
    lp: &LpProblem,
    overlays: &[BoundsOverlay],
    kind: BasisKind,
) -> Vec<Result<f64, LpError>> {
    with_basis(kind, || {
        let mut out = Vec::with_capacity(overlays.len() + 1);
        let mut hint: Option<Basis> = None;
        let base = BoundsOverlay::default();
        for overlay in std::iter::once(&base).chain(overlays) {
            match resolve_with_bounds(lp, overlay, hint.as_ref()) {
                Ok(o) => {
                    out.push(Ok(o.solution.objective));
                    hint = Some(o.basis);
                }
                Err(e) => out.push(Err(e)),
            }
        }
        out
    })
}

fn random_overlays(lp: &LpProblem, chain: usize, seed: u64) -> Vec<BoundsOverlay> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00ff_1ce0_f00d);
    let n = lp.num_vars();
    let m = lp.num_constraints();
    (0..chain)
        .map(|_| {
            let mut overlay = BoundsOverlay::default();
            for j in 0..n {
                if rng.gen_bool(0.2) {
                    overlay.fix_zero.push(VarId(j));
                }
            }
            for r in 0..m {
                if rng.gen_bool(0.25) {
                    overlay.rhs.push((r, rng.gen_range(-1.0..4.0)));
                }
            }
            overlay
        })
        .collect()
}

/// Case count: 96 by default (CI-friendly), `PM_LP_DIFF_CASES` to crank it
/// up for soak runs.
fn cases() -> u32 {
    std::env::var("PM_LP_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// With a lexicographic secondary objective the engines must agree not just
/// on the objective but on the *point*: the secondary makes the optimal
/// vertex unique, so eta/Dantzig and LU/devex land on the same values no
/// matter how differently they walk there.
#[test]
fn secondary_objective_makes_the_vertex_engine_independent() {
    // max x + y + z over x + y + z <= 2, x <= 1, z <= 1: the whole simplex
    // face x + y + z = 2 is optimal. On it the secondary 3x + 2y + z equals
    // 4 + x − z, minimized at x = 0, z = 1 → the unique canonical vertex
    // (0, 1, 1).
    let mut lp = LpProblem::new(Objective::Maximize);
    let x = lp.add_var("x");
    let y = lp.add_var("y");
    let z = lp.add_var("z");
    for v in [x, y, z] {
        lp.set_objective_coeff(v, 1.0);
    }
    lp.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Le, 2.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
    lp.add_constraint(vec![(z, 1.0)], Relation::Le, 1.0);
    lp.set_secondary_coeff(x, 3.0);
    lp.set_secondary_coeff(y, 2.0);
    lp.set_secondary_coeff(z, 1.0);
    let _guard = lock();
    let eta = with_basis(BasisKind::Eta, || lp.solve()).unwrap();
    let lu = with_basis(BasisKind::Lu, || lp.solve()).unwrap();
    assert!((eta.objective - 2.0).abs() < TOL);
    assert!((lu.objective - 2.0).abs() < TOL);
    for (a, b) in eta.values().iter().zip(lu.values()) {
        assert!(
            (a - b).abs() < TOL,
            "vertices differ: {:?} vs {:?}",
            eta.values(),
            lu.values()
        );
    }
    assert!((eta.value(x)).abs() < TOL);
    assert!((eta.value(y) - 1.0).abs() < TOL);
    assert!((eta.value(z) - 1.0).abs() < TOL);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn bases_agree_on_random_lps(
        num_vars in 1usize..7,
        num_cons in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let lp = random_lp(num_vars, num_cons, seed);
        assert_bases_agree(&lp)?;
    }

    // Degenerate duplicated rows: the over-determined optimal vertex is
    // where factorization bugs hide — many tied ratio tests, tiny pivots,
    // frequent refactorizations.
    #[test]
    fn bases_agree_on_degenerate_duplicated_lps(
        num_vars in 1usize..5,
        num_cons in 1usize..5,
        seed in 0u64..1_000_000,
        copies in 1usize..4,
    ) {
        let base = random_lp(num_vars, num_cons, seed);
        let mut degen = base.clone();
        for constraint in base.constraints().to_vec() {
            for copy in 0..copies {
                let scale = 1.0 + copy as f64;
                let terms: Vec<(VarId, f64)> = constraint
                    .terms
                    .iter()
                    .map(|&(v, c)| (v, c * scale))
                    .collect();
                degen.add_constraint(terms, constraint.relation, constraint.rhs * scale);
            }
        }
        assert_bases_agree(&degen)?;
    }

    // Warm-chained overlay re-solves: each step warm-starts from the
    // previous basis, so the LU engine's Forrest–Tomlin updates run on
    // installed (not self-built) bases. Statuses and objectives must agree
    // with the eta chain at every step.
    #[test]
    fn bases_agree_along_warm_chains(
        num_vars in 2usize..7,
        num_cons in 1usize..8,
        chain in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let lp = random_lp(num_vars, num_cons, seed);
        let overlays = random_overlays(&lp, chain, seed);
        let _guard = lock();
        let eta = warm_chain(&lp, &overlays, BasisKind::Eta);
        let lu = warm_chain(&lp, &overlays, BasisKind::Lu);
        prop_assert_eq!(eta.len(), lu.len());
        for (step, (e, l)) in eta.iter().zip(&lu).enumerate() {
            match (e, l) {
                (Ok(eo), Ok(lo)) => prop_assert!(
                    (eo - lo).abs() <= TOL * (1.0 + eo.abs()),
                    "step {}: objectives disagree: eta {} vs lu {}",
                    step, eo, lo
                ),
                (Err(ee), Err(le)) => {
                    prop_assert!(ee == le, "step {}: eta {:?} vs lu {:?}", step, ee, le)
                }
                _ => prop_assert!(
                    false,
                    "step {}: status mismatch: eta {:?} vs lu {:?}",
                    step, e, l
                ),
            }
        }
    }
}
