//! LP engine micro-benchmarks: dense tableau vs sparse revised simplex,
//! cold vs warm-started, on network-flow-shaped LPs of increasing size (the
//! shape the multicast formulations produce). Runs in CI's bench-smoke job
//! under `--test` (every body executes once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_lp::{revised, BasisKind, LpProblem, Objective, Relation, SolverKind};

/// A transshipment LP on a `rows × cols` grid: one unit of flow enters at
/// the top-left corner and must reach the bottom-right corner; arcs go right
/// and down with deterministic pseudo-random costs, and every interior node
/// carries a flow-conservation equality — the same row structure (sparse Eq
/// rows plus a few coupling inequalities) as the steady-state multicast LPs.
fn grid_flow_lp(rows: usize, cols: usize) -> LpProblem {
    let node = |r: usize, c: usize| r * cols + c;
    let mut lp = LpProblem::new(Objective::Minimize);
    let mut arcs: Vec<(usize, usize, pm_lp::VarId)> = Vec::new();
    let mut state = 0x5bd1_e995u64;
    let mut next_cost = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        1.0 + (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let v = lp.add_var(&format!("e_{r}_{c}_r"));
                lp.set_objective_coeff(v, next_cost());
                arcs.push((node(r, c), node(r, c + 1), v));
            }
            if r + 1 < rows {
                let v = lp.add_var(&format!("e_{r}_{c}_d"));
                lp.set_objective_coeff(v, next_cost());
                arcs.push((node(r, c), node(r + 1, c), v));
            }
        }
    }
    let source = node(0, 0);
    let sink = node(rows - 1, cols - 1);
    for n in 0..rows * cols {
        let mut terms: Vec<(pm_lp::VarId, f64)> = Vec::new();
        for &(from, to, v) in &arcs {
            if from == n {
                terms.push((v, 1.0));
            } else if to == n {
                terms.push((v, -1.0));
            }
        }
        let rhs = if n == source {
            1.0
        } else if n == sink {
            -1.0
        } else {
            0.0
        };
        lp.add_constraint(terms, Relation::Eq, rhs);
    }
    // A few capacity couplings so the basis is not purely a tree.
    for (i, &(_, _, v)) in arcs.iter().enumerate().step_by(7) {
        let partner = arcs[(i + 3) % arcs.len()].2;
        lp.add_constraint(vec![(v, 1.0), (partner, 1.0)], Relation::Le, 0.9);
    }
    lp
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solve");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, rows, cols) in [("8x8", 8usize, 8usize), ("16x16", 16, 16)] {
        let lp = grid_flow_lp(rows, cols);
        group.bench_with_input(BenchmarkId::new("dense", label), &lp, |b, lp| {
            b.iter(|| lp.solve_with(SolverKind::Dense).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("revised_cold", label), &lp, |b, lp| {
            b.iter(|| lp.solve_with(SolverKind::Revised).unwrap())
        });
        // Warm-started: re-solve from the previous optimal basis, as the
        // Figure-11 sweep does across consecutive densities.
        let basis = revised::solve_with_hint(&lp, None).unwrap().basis;
        group.bench_with_input(BenchmarkId::new("revised_warm", label), &lp, |b, lp| {
            b.iter(|| revised::solve_with_hint(lp, Some(&basis)).unwrap())
        });
    }
    group.finish();
}

/// Basis-factorization head-to-head inside the revised engine: product-form
/// eta file (+ Dantzig pricing) versus sparse LU with Forrest–Tomlin updates
/// (+ devex pricing). The eta file's FTRAN/BTRAN cost grows with every pivot
/// since the last refactorization, so the LU engine pulls ahead as the LPs
/// grow (crossover around the 32x32 grid on this shape); below that, eta's
/// simplicity wins. See docs/benchmarks.md for measured numbers.
fn bench_bases(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_basis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, rows, cols) in [("16x16", 16usize, 16usize), ("40x40", 40, 40)] {
        let lp = grid_flow_lp(rows, cols);
        for (name, kind) in [("eta", BasisKind::Eta), ("lu", BasisKind::Lu)] {
            group.bench_with_input(BenchmarkId::new(name, label), &lp, |b, lp| {
                b.iter(|| {
                    pm_lp::set_default_basis(Some(kind));
                    let out = lp.solve_with(SolverKind::Revised).unwrap();
                    pm_lp::set_default_basis(None);
                    out
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_bases);
criterion_main!(benches);
