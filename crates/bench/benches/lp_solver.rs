//! Micro-benchmarks of the from-scratch simplex on the paper's formulations:
//! the cost of one `Multicast-LB`, `Multicast-UB` and `Broadcast-EB` solve on
//! the reference instances and on generated hierarchical platforms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_core::formulations::{BroadcastEb, MulticastLb, MulticastUb};
use pm_platform::instances::figure1_instance;
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_figure1(c: &mut Criterion) {
    let inst = figure1_instance();
    let mut group = c.benchmark_group("lp/figure1");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("multicast_lb", |b| {
        b.iter(|| MulticastLb::new(&inst).solve().unwrap())
    });
    group.bench_function("multicast_ub", |b| {
        b.iter(|| MulticastUb::new(&inst).solve().unwrap())
    });
    group.bench_function("broadcast_eb", |b| {
        b.iter(|| BroadcastEb::new(&inst).solve().unwrap())
    });
    group.finish();
}

fn bench_generated(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/tiers_like");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, class) in [("small", PlatformClass::Small), ("big", PlatformClass::Big)] {
        let topo = TiersLikeGenerator::reduced_scale(class, 3).generate();
        let mut rng = StdRng::seed_from_u64(9);
        let inst = topo.sample_instance(0.5, &mut rng);
        group.bench_with_input(BenchmarkId::new("multicast_lb", label), &inst, |b, inst| {
            b.iter(|| MulticastLb::new(inst).solve().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("multicast_ub", label), &inst, |b, inst| {
            b.iter(|| MulticastUb::new(inst).solve().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1, bench_generated);
criterion_main!(benches);
