//! Micro-benchmarks of the weighted bipartite edge coloring (the schedule
//! reconstruction step of the NP-membership proofs): cost as a function of
//! the number of communication tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_platform::graph::NodeId;
use pm_sched::coloring::{schedule_tasks, CommTask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tasks(num_nodes: usize, num_tasks: usize, seed: u64) -> Vec<CommTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_tasks)
        .map(|_| {
            let src = rng.gen_range(0..num_nodes) as u32;
            let mut dst = rng.gen_range(0..num_nodes) as u32;
            while dst == src {
                dst = rng.gen_range(0..num_nodes) as u32;
            }
            CommTask {
                src: NodeId(src),
                dst: NodeId(dst),
                duration: rng.gen_range(0.05..1.0),
                tag: 0,
            }
        })
        .collect()
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_coloring");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(nodes, tasks) in &[(10usize, 30usize), (20, 100), (40, 300)] {
        let input = random_tasks(nodes, tasks, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{tasks}t")),
            &input,
            |b, input| b.iter(|| schedule_tasks(nodes, input)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
