//! Micro-benchmarks of the heuristics on a fixed generated platform. This is
//! the quantitative backing of the paper's remark (Section 7) that MCPH is
//! much cheaper to run than the LP-based heuristics while achieving a
//! comparable period.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_core::heuristics::{
    AugmentedMulticast, AugmentedSources, Mcph, ReducedBroadcast, ThroughputHeuristic,
};
use pm_platform::instances::figure1_instance;
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_heuristics(c: &mut Criterion) {
    let figure1 = figure1_instance();
    let topo = TiersLikeGenerator::reduced_scale(PlatformClass::Small, 5).generate();
    let mut rng = StdRng::seed_from_u64(17);
    let generated = topo.sample_instance(0.5, &mut rng);

    let mut group = c.benchmark_group("heuristics");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, inst) in [("figure1", &figure1), ("tiers_small", &generated)] {
        group.bench_function(format!("mcph/{label}"), |b| {
            b.iter(|| Mcph.run(inst).unwrap())
        });
        group.bench_function(format!("augmented_sources/{label}"), |b| {
            b.iter(|| AugmentedSources::default().run(inst).unwrap())
        });
    }
    // The two sub-platform exploration heuristics solve dozens of broadcast
    // LPs per run; benchmark them on the worked example only so that a full
    // `cargo bench` stays affordable on modest machines.
    group.bench_function("augmented_multicast/figure1", |b| {
        b.iter(|| AugmentedMulticast.run(&figure1).unwrap())
    });
    group.bench_function("reduced_broadcast/figure1", |b| {
        b.iter(|| ReducedBroadcast.run(&figure1).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
