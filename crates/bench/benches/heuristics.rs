//! Micro-benchmarks of the heuristics on fixed generated platforms. This is
//! the quantitative backing of two claims:
//!
//! * the paper's remark (Section 7) that MCPH is much cheaper to run than
//!   the LP-based heuristics while achieving a comparable period, and
//! * this repository's masked-formulation design: candidate sub-platform
//!   solves warm-started from a neighbouring mask's basis cost a few repair
//!   pivots, while the same solves run cold pay a full phase 1 + 2 — the
//!   difference that makes the big-class and paper-scale greedy loops
//!   affordable at all.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_core::heuristics::{
    AugmentedMulticast, AugmentedSources, Mcph, ReducedBroadcast, ThroughputHeuristic,
};
use pm_core::masked::MaskedFlowLp;
use pm_core::report::HeuristicKind;
use pm_core::session::Session;
use pm_platform::graph::NodeId;
use pm_platform::instances::{figure1_instance, MulticastInstance};
use pm_platform::mask::NodeMask;
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample(class: PlatformClass, paper_scale: bool, seed: u64, density: f64) -> MulticastInstance {
    let mut generator = if paper_scale {
        TiersLikeGenerator::paper_scale(class, seed)
    } else {
        TiersLikeGenerator::reduced_scale(class, seed)
    };
    let topo = generator.generate();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(17));
    topo.sample_instance(density, &mut rng)
}

fn bench_heuristics(c: &mut Criterion) {
    let figure1 = figure1_instance();
    let tiers_small = sample(PlatformClass::Small, false, 5, 0.5);
    let tiers_big = sample(PlatformClass::Big, false, 5, 0.5);

    let mut group = c.benchmark_group("heuristics");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, inst) in [("figure1", &figure1), ("tiers_small", &tiers_small)] {
        group.bench_function(format!("mcph/{label}"), |b| {
            b.iter(|| Mcph.run(inst).unwrap())
        });
        group.bench_function(format!("augmented_sources/{label}"), |b| {
            b.iter(|| AugmentedSources::default().run(inst).unwrap())
        });
    }
    group.bench_function("augmented_multicast/figure1", |b| {
        b.iter(|| AugmentedMulticast.run(&figure1).unwrap())
    });
    group.bench_function("reduced_broadcast/figure1", |b| {
        b.iter(|| ReducedBroadcast.run(&figure1).unwrap())
    });
    // Big-class greedy runs: dozens of broadcast LPs each, affordable only
    // because the masked candidate solves warm-start (PR 2's rebuild-based
    // loops took minutes per big instance).
    group.bench_function("reduced_broadcast/tiers_big", |b| {
        b.iter(|| ReducedBroadcast.run(&tiers_big).unwrap())
    });
    group.bench_function("augmented_multicast/tiers_big", |b| {
        b.iter(|| AugmentedMulticast.run(&tiers_big).unwrap())
    });
    group.finish();

    // Cold vs masked-warm candidate solves: the quantity the warm-start
    // design actually buys. One representative candidate (remove the
    // highest-id non-target LAN node) is solved from scratch and from the
    // full-platform basis.
    let mut group = c.benchmark_group("masked_candidate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let paper_small = sample(PlatformClass::Small, true, 7, 0.5);
    for (label, inst) in [
        ("tiers_big", &tiers_big),
        ("paper_scale_smoke", &paper_small),
    ] {
        let template = MaskedFlowLp::broadcast_eb(inst);
        let n = inst.platform.node_count();
        let full = NodeMask::full(n);
        let base = template.solve(&full, None).unwrap();
        let candidate = (0..n as u32)
            .rev()
            .map(NodeId)
            .find(|&v| {
                v != inst.source
                    && !inst.is_target(v)
                    && template.solve(&full.without(v), None).is_ok()
            })
            .expect("some removable node keeps the platform connected");
        let mask = full.without(candidate);
        group.bench_function(format!("cold/{label}"), |b| {
            b.iter(|| template.solve(&mask, None).unwrap())
        });
        group.bench_function(format!("masked_warm/{label}"), |b| {
            b.iter(|| template.solve(&mask, Some(&base.basis)).unwrap())
        });
    }
    group.finish();

    // The session group backs the drifting-platform acceptance criterion:
    // after a single edge-cost edit, an incremental `Session::solve` (in-place
    // coefficient rewrite + warm basis) must be >= 3x faster than the
    // equivalent cold one-shot rebuild (fresh templates, cold phase 1 + 2).
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, inst) in [("tiers_small", &tiers_small), ("tiers_big", &tiers_big)] {
        let edge = inst.platform.edge_ids().next().expect("platform has edges");
        let base_cost = inst.platform.cost(edge);
        group.bench_function(format!("one_shot_cold/{label}"), |b| {
            let mut flip = false;
            b.iter(|| {
                // The same single-edge drift the incremental path absorbs,
                // paid as a full rebuild: new session, fresh template, cold
                // solve.
                flip = !flip;
                let mut session = Session::new(inst.clone());
                session
                    .set_edge_cost(edge, if flip { base_cost * 1.25 } else { base_cost })
                    .unwrap();
                session.solve(HeuristicKind::Broadcast).unwrap()
            })
        });
        group.bench_function(format!("incremental_edge_edit/{label}"), |b| {
            let mut session = Session::new(inst.clone());
            session.solve(HeuristicKind::Broadcast).unwrap();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                session
                    .set_edge_cost(edge, if flip { base_cost * 1.25 } else { base_cost })
                    .unwrap();
                session.solve(HeuristicKind::Broadcast).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
