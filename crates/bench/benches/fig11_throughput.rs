//! End-to-end benchmark of one Figure 11 point: collecting every curve on a
//! single (platform, density) instance. This measures the full cost of one
//! cell of the evaluation tables and doubles as a smoke test that every
//! heuristic completes on generated topologies.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_core::report::{HeuristicKind, MulticastReport};
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig11_point(c: &mut Criterion) {
    let topo = TiersLikeGenerator::reduced_scale(PlatformClass::Small, 21).generate();
    let mut rng = StdRng::seed_from_u64(4);
    let inst = topo.sample_instance(0.5, &mut rng);

    let mut group = c.benchmark_group("fig11_point");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("references_only", |b| {
        b.iter(|| {
            MulticastReport::collect(
                &inst,
                &[
                    HeuristicKind::Scatter,
                    HeuristicKind::LowerBound,
                    HeuristicKind::Mcph,
                ],
            )
            .unwrap()
        })
    });
    group.bench_function("all_heuristics", |b| {
        b.iter(|| MulticastReport::collect(&inst, &HeuristicKind::ALL).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig11_point);
criterion_main!(benches);
