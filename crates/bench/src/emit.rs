//! Deterministic JSON and CSV emission for sweep results.
//!
//! Hand-rolled writers (the workspace's serde is a no-op stub, see
//! `vendor/serde`): floats are printed with Rust's shortest round-trip
//! formatting, infinities become JSON `null` / CSV `inf`, and iteration
//! order follows the configuration, so identical configurations produce
//! byte-identical files — CI diffs them against the committed baseline.

use crate::sweep::{BatchResult, SweepConfig, SweepResult};
use pm_core::report::{HeuristicKind, MulticastReport};
use pm_platform::topology::PlatformClass;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

/// Schema tag embedded in every JSON document, bumped on layout changes.
/// v2 added the `meta` block (`solve_ms` wall-clock total and the LP
/// warm-start counters); v3 added the per-heuristic
/// `meta.per_heuristic` aggregates (lp_solves / warm_hits / warm_misses
/// per curve); v4 added the realization stage (`fig11 --realize`): per-point
/// `realization` objects (simulated throughput, realization gap, one-port
/// violations per curve), a `meta.realization` aggregate block, and the
/// `simulated_throughput` / `realization_gap` CSV columns (empty without
/// `--realize`).
pub const JSON_SCHEMA: &str = "pm-bench/fig11-sweep/v4";

/// CSV header of [`batch_to_csv`] / [`sweep_to_csv`].
pub const CSV_HEADER: &str = "class,seed,paper_scale,platforms,density,instances,kind,mean_period,simulated_throughput,realization_gap";

/// CSV header of the streamed per-item rows (`fig11 --items-csv`).
pub const ITEMS_CSV_HEADER: &str = "class,seed,paper_scale,platform,density,nodes,targets,kind,period,simulated_throughput,realization_gap,one_port_violations,lp_solves,warm_hits,warm_misses";

/// Stable lower-case key of a platform class.
pub fn class_key(class: PlatformClass) -> &'static str {
    match class {
        PlatformClass::Small => "small",
        PlatformClass::Big => "big",
    }
}

/// Stable snake_case key of a heuristic kind (the paper labels of
/// [`HeuristicKind::label`] contain spaces and dots, so they are kept for
/// tables only).
pub fn kind_key(kind: HeuristicKind) -> &'static str {
    match kind {
        HeuristicKind::Scatter => "scatter",
        HeuristicKind::LowerBound => "lower_bound",
        HeuristicKind::Broadcast => "broadcast",
        HeuristicKind::Mcph => "mcph",
        HeuristicKind::AugmentedMulticast => "augmented_multicast",
        HeuristicKind::ReducedBroadcast => "reduced_broadcast",
        HeuristicKind::MultisourceMulticast => "multisource_multicast",
    }
}

/// A finite float as a JSON number, anything else as `null` (JSON has no
/// infinity literal). Shared with the drift emitter so the two artifact
/// families can never drift apart in float formatting.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A finite float for CSV, infinities spelled `inf`.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "inf".to_string()
    }
}

fn push_sweep_json(out: &mut String, sweep: &SweepResult, indent: &str) {
    let cfg = &sweep.config;
    out.push_str(&format!("{indent}{{\n"));
    out.push_str(&format!(
        "{indent}  \"class\": \"{}\",\n",
        class_key(cfg.class)
    ));
    out.push_str(&format!("{indent}  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "{indent}  \"paper_scale\": {},\n",
        cfg.paper_scale
    ));
    out.push_str(&format!("{indent}  \"platforms\": {},\n", cfg.platforms));
    let kinds: Vec<String> = cfg
        .kinds
        .iter()
        .map(|&k| format!("\"{}\"", kind_key(k)))
        .collect();
    out.push_str(&format!("{indent}  \"kinds\": [{}],\n", kinds.join(", ")));
    out.push_str(&format!("{indent}  \"points\": [\n"));
    for (i, point) in sweep.points.iter().enumerate() {
        out.push_str(&format!("{indent}    {{\n"));
        out.push_str(&format!(
            "{indent}      \"density\": {},\n",
            json_f64(point.density)
        ));
        out.push_str(&format!(
            "{indent}      \"instances\": {},\n",
            point.instances
        ));
        out.push_str(&format!("{indent}      \"mean_period\": {{"));
        let entries: Vec<String> = point
            .mean_period
            .iter()
            .map(|&(k, p)| format!("\"{}\": {}", kind_key(k), json_f64(p)))
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("},\n");
        out.push_str(&format!("{indent}      \"realization\": {{"));
        let entries: Vec<String> = point
            .realization
            .iter()
            .map(|&(k, r)| {
                format!(
                    "\"{}\": {{\"realized\": {}, \"simulated_throughput\": {}, \
                     \"realization_gap\": {}, \"max_realization_gap\": {}, \
                     \"one_port_violations\": {}}}",
                    kind_key(k),
                    r.realized,
                    json_f64(r.mean_simulated_throughput),
                    json_f64(r.mean_realization_gap),
                    json_f64(r.max_realization_gap),
                    r.one_port_violations
                )
            })
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("}\n");
        let comma = if i + 1 < sweep.points.len() { "," } else { "" };
        out.push_str(&format!("{indent}    }}{comma}\n"));
    }
    out.push_str(&format!("{indent}  ]\n"));
    out.push_str(&format!("{indent}}}"));
}

/// One sweep as a pretty-printed JSON document.
///
/// Single-sweep exports have no batch accounting, so the v2 `meta` block is
/// emitted zeroed — the document shape matches [`batch_to_json`] exactly,
/// as the shared schema tag promises.
pub fn sweep_to_json(sweep: &SweepResult) -> String {
    let batch = BatchResult {
        sweeps: vec![sweep.clone()],
        meta: crate::sweep::BatchMeta::default(),
    };
    batch_to_json(&batch)
}

/// A full batch as a pretty-printed JSON document.
///
/// The `meta` block carries the LP accounting of the run. Every field in it
/// is deterministic for a given configuration except `solve_ms`, which is a
/// wall-clock measurement — byte-comparisons of two runs (as CI does) must
/// filter the `"solve_ms"` line first.
pub fn batch_to_json(batch: &BatchResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{JSON_SCHEMA}\",\n"));
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"solve_ms\": {},\n", batch.meta.solve_ms));
    out.push_str(&format!("    \"lp_solves\": {},\n", batch.meta.lp_solves));
    out.push_str(&format!("    \"warm_hits\": {},\n", batch.meta.warm_hits));
    out.push_str(&format!(
        "    \"warm_misses\": {},\n",
        batch.meta.warm_misses
    ));
    out.push_str("    \"per_heuristic\": {");
    let entries: Vec<String> = batch
        .meta
        .per_kind
        .iter()
        .map(|&(kind, s)| {
            format!(
                "\"{}\": {{\"lp_solves\": {}, \"warm_hits\": {}, \"warm_misses\": {}}}",
                kind_key(kind),
                s.lp_solves,
                s.warm_hits,
                s.warm_misses
            )
        })
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("},\n");
    out.push_str("    \"realization\": {");
    let entries: Vec<String> = batch
        .meta
        .realization
        .iter()
        .map(|&(kind, r)| {
            format!(
                "\"{}\": {{\"realized\": {}, \"failed\": {}, \"one_port_violations\": {}, \
                 \"max_gap\": {}, \"mean_gap\": {}}}",
                kind_key(kind),
                r.realized,
                r.failed,
                r.one_port_violations,
                json_f64(r.max_gap),
                json_f64(r.mean_gap())
            )
        })
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("}\n");
    out.push_str("  },\n");
    out.push_str("  \"sweeps\": [\n");
    for (i, sweep) in batch.sweeps.iter().enumerate() {
        push_sweep_json(&mut out, sweep, "    ");
        out.push_str(if i + 1 < batch.sweeps.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_sweep_csv(out: &mut String, sweep: &SweepResult) {
    let cfg = &sweep.config;
    for point in &sweep.points {
        for &(kind, period) in &point.mean_period {
            // Realization columns: empty without `--realize` or when the
            // kind realized no instance at this point.
            let (sim, gap) = match point.realization(kind) {
                Some(r) if r.realized > 0 => (
                    csv_f64(r.mean_simulated_throughput),
                    csv_f64(r.mean_realization_gap),
                ),
                _ => (String::new(), String::new()),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                class_key(cfg.class),
                cfg.seed,
                cfg.paper_scale,
                cfg.platforms,
                csv_f64(point.density),
                point.instances,
                kind_key(kind),
                csv_f64(period),
                sim,
                gap,
            ));
        }
    }
}

/// One sweep as CSV (long format: one row per `(density, kind)`).
pub fn sweep_to_csv(sweep: &SweepResult) -> String {
    let mut out = format!("{CSV_HEADER}\n");
    push_sweep_csv(&mut out, sweep);
    out
}

/// A full batch as CSV (long format: one row per
/// `(class, seed, density, kind)`).
pub fn batch_to_csv(batch: &BatchResult) -> String {
    let mut out = format!("{CSV_HEADER}\n");
    for sweep in &batch.sweeps {
        push_sweep_csv(&mut out, sweep);
    }
    out
}

/// Format of the streamed per-item rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemRowFormat {
    /// One [`ITEMS_CSV_HEADER`] row per `(instance, kind)`.
    Csv,
    /// One JSON object per line per `(instance, kind)` (JSON Lines).
    Jsonl,
}

struct SinkState {
    /// The next item index to flush.
    next: usize,
    /// Chunks that arrived out of order, keyed by item index.
    pending: BTreeMap<usize, String>,
    out: Box<dyn Write + Send>,
}

/// An ordered streaming writer for per-item sweep rows.
///
/// Work items complete in scheduler order, but the file must be
/// byte-identical across runs and thread counts (the property every fig11
/// artifact upholds): each item submits its row chunk under its *item
/// index*, and the sink flushes chunks to the writer in index order,
/// buffering only the out-of-order window. Memory therefore stays
/// proportional to scheduler skew, not to the sweep size — this is what
/// lets paper-scale `--realize --full` sweeps keep their per-instance
/// detail without holding every report in memory.
pub struct ItemSink {
    format: ItemRowFormat,
    inner: Mutex<SinkState>,
}

impl ItemSink {
    /// Creates a sink over `out`, writing the CSV header up front (CSV
    /// format only).
    pub fn new(format: ItemRowFormat, mut out: Box<dyn Write + Send>) -> io::Result<Self> {
        if format == ItemRowFormat::Csv {
            writeln!(out, "{ITEMS_CSV_HEADER}")?;
        }
        Ok(ItemSink {
            format,
            inner: Mutex::new(SinkState {
                next: 0,
                pending: BTreeMap::new(),
                out,
            }),
        })
    }

    /// The sink's row format.
    pub fn format(&self) -> ItemRowFormat {
        self.format
    }

    /// Submits the rows of item `index`; flushes every chunk that is now
    /// contiguous with the already-written prefix.
    pub fn submit(&self, index: usize, chunk: String) -> io::Result<()> {
        let mut state = self.inner.lock().expect("item sink poisoned");
        state.pending.insert(index, chunk);
        loop {
            let next = state.next;
            let Some(chunk) = state.pending.remove(&next) else {
                break;
            };
            state.out.write_all(chunk.as_bytes())?;
            state.next += 1;
        }
        state.out.flush()
    }

    /// Flushes the writer; fails if chunks are still missing (an item index
    /// was never submitted).
    pub fn finish(self) -> io::Result<()> {
        let mut state = self.inner.into_inner().expect("item sink poisoned");
        if let Some((&index, _)) = state.pending.iter().next() {
            return Err(io::Error::other(format!(
                "item sink finished with unflushed chunk {index} (next expected {})",
                state.next
            )));
        }
        state.out.flush()
    }
}

/// Renders the per-item rows of one work item (every `(density, kind)` pair
/// of one platform's reports) in the sink's format. Rows follow the
/// configuration's density and kind order, so the streamed file is
/// deterministic once the sink has ordered the items.
pub fn item_rows(
    format: ItemRowFormat,
    config: &SweepConfig,
    platform_index: usize,
    reports: &[(usize, Option<MulticastReport>)],
    out: &mut String,
) {
    for (di, report) in reports {
        let Some(report) = report else { continue };
        let density = config.densities[*di];
        for &(kind, period) in &report.periods {
            let stats = report.lp_stats_for(kind).unwrap_or_default();
            let real = report.realization_for(kind);
            match format {
                ItemRowFormat::Csv => {
                    let (sim, gap, violations) = match real {
                        Some(r) => (
                            csv_f64(r.simulated_throughput),
                            csv_f64(r.realization_gap),
                            r.one_port_violations.to_string(),
                        ),
                        None => (String::new(), String::new(), String::new()),
                    };
                    out.push_str(&format!(
                        "{},{},{},{platform_index},{},{},{},{},{},{sim},{gap},{violations},{},{},{}
",
                        class_key(config.class),
                        config.seed,
                        config.paper_scale,
                        csv_f64(density),
                        report.nodes,
                        report.targets,
                        kind_key(kind),
                        csv_f64(period),
                        stats.lp_solves,
                        stats.warm_hits,
                        stats.warm_misses,
                    ));
                }
                ItemRowFormat::Jsonl => {
                    let realization = match real {
                        Some(r) => format!(
                            "{{\"simulated_throughput\": {}, \"realization_gap\": {}, \
                             \"one_port_violations\": {}}}",
                            json_f64(r.simulated_throughput),
                            json_f64(r.realization_gap),
                            r.one_port_violations
                        ),
                        None => "null".to_string(),
                    };
                    out.push_str(&format!(
                        "{{\"class\": \"{}\", \"seed\": {}, \"paper_scale\": {}, \
                         \"platform\": {platform_index}, \"density\": {}, \"nodes\": {}, \
                         \"targets\": {}, \"kind\": \"{}\", \"period\": {}, \
                         \"lp_solves\": {}, \"warm_hits\": {}, \"warm_misses\": {}, \
                         \"realization\": {realization}}}
",
                        class_key(config.class),
                        config.seed,
                        config.paper_scale,
                        json_f64(density),
                        report.nodes,
                        report.targets,
                        kind_key(kind),
                        json_f64(period),
                        stats.lp_solves,
                        stats.warm_hits,
                        stats.warm_misses,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{BatchResult, SweepConfig, SweepPoint};

    fn fake_sweep() -> SweepResult {
        SweepResult {
            config: SweepConfig {
                class: PlatformClass::Small,
                paper_scale: false,
                platforms: 2,
                densities: vec![0.5],
                seed: 42,
                kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
                realize: false,
            },
            points: vec![SweepPoint {
                density: 0.5,
                mean_period: vec![
                    (HeuristicKind::Scatter, 4.25),
                    (HeuristicKind::Mcph, f64::INFINITY),
                ],
                realization: Vec::new(),
                instances: 2,
            }],
        }
    }

    fn fake_realized_sweep() -> SweepResult {
        let mut sweep = fake_sweep();
        sweep.config.realize = true;
        sweep.points[0].realization = vec![
            (
                HeuristicKind::Scatter,
                crate::sweep::PointRealization {
                    realized: 2,
                    mean_simulated_throughput: 0.25,
                    mean_realization_gap: 0.0,
                    max_realization_gap: 0.0,
                    one_port_violations: 0,
                },
            ),
            (
                HeuristicKind::Mcph,
                crate::sweep::PointRealization {
                    realized: 0,
                    mean_simulated_throughput: f64::INFINITY,
                    mean_realization_gap: f64::INFINITY,
                    max_realization_gap: f64::INFINITY,
                    one_port_violations: 0,
                },
            ),
        ];
        sweep
    }

    #[test]
    fn json_contains_schema_keys_and_null_infinity() {
        let json = sweep_to_json(&fake_sweep());
        assert!(json.contains("\"schema\": \"pm-bench/fig11-sweep/v4\""));
        assert!(json.contains("\"class\": \"small\""));
        assert!(json.contains("\"scatter\": 4.25"));
        assert!(json.contains("\"mcph\": null"));
        // Balanced braces/brackets — a cheap well-formedness check given the
        // writer never emits strings containing braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_has_header_and_one_row_per_kind() {
        let csv = sweep_to_csv(&fake_sweep());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "small,42,false,2,0.5,2,scatter,4.25,,");
        assert_eq!(lines[2], "small,42,false,2,0.5,2,mcph,inf,,");
    }

    #[test]
    fn realized_sweep_emits_the_new_columns_and_objects() {
        let sweep = fake_realized_sweep();
        let csv = sweep_to_csv(&sweep);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[1], "small,42,false,2,0.5,2,scatter,4.25,0.25,0");
        // A kind that realized nothing keeps empty columns.
        assert_eq!(lines[2], "small,42,false,2,0.5,2,mcph,inf,,");
        let json = sweep_to_json(&sweep);
        assert!(json.contains(
            "\"scatter\": {\"realized\": 2, \"simulated_throughput\": 0.25, \
             \"realization_gap\": 0, \"max_realization_gap\": 0, \"one_port_violations\": 0}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn emission_is_deterministic() {
        let sweep = fake_sweep();
        assert_eq!(sweep_to_json(&sweep), sweep_to_json(&sweep));
        assert_eq!(sweep_to_csv(&sweep), sweep_to_csv(&sweep));
        let batch = BatchResult {
            sweeps: vec![sweep.clone(), sweep],
            meta: crate::sweep::BatchMeta::default(),
        };
        assert_eq!(batch_to_json(&batch), batch_to_json(&batch));
        assert_eq!(batch_to_csv(&batch), batch_to_csv(&batch));
    }

    #[test]
    fn batch_json_contains_the_meta_block() {
        let batch = BatchResult {
            sweeps: vec![fake_sweep()],
            meta: crate::sweep::BatchMeta {
                solve_ms: 1234,
                lp_solves: 64,
                warm_hits: 48,
                warm_misses: 16,
                per_kind: vec![(
                    HeuristicKind::ReducedBroadcast,
                    pm_core::report::KindLpStats {
                        lp_solves: 40,
                        warm_hits: 36,
                        warm_misses: 4,
                    },
                )],
                realization: vec![(
                    HeuristicKind::ReducedBroadcast,
                    crate::sweep::KindRealizationAgg {
                        realized: 4,
                        failed: 0,
                        one_port_violations: 0,
                        max_gap: 0.5,
                        sum_gap: 1.0,
                    },
                )],
            },
        };
        let json = batch_to_json(&batch);
        assert!(json.contains("\"meta\": {"));
        assert!(json.contains("\"solve_ms\": 1234"));
        assert!(json.contains("\"lp_solves\": 64"));
        assert!(json.contains("\"warm_hits\": 48"));
        assert!(json.contains("\"warm_misses\": 16"));
        assert!(json.contains(
            "\"reduced_broadcast\": {\"lp_solves\": 40, \"warm_hits\": 36, \"warm_misses\": 4}"
        ));
        assert!(json.contains(
            "\"reduced_broadcast\": {\"realized\": 4, \"failed\": 0, \
             \"one_port_violations\": 0, \"max_gap\": 0.5, \"mean_gap\": 0.25}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
