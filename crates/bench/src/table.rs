//! Plain-text tables mirroring the curves of Figure 11.

use crate::sweep::SweepResult;
use pm_core::report::HeuristicKind;

fn fmt(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:>10.4}"),
        _ => format!("{:>10}", "inf"),
    }
}

/// Formats the mean periods per density, one column per heuristic.
pub fn format_period_table(result: &SweepResult) -> String {
    let kinds: Vec<HeuristicKind> = result.config.kinds.clone();
    let mut out = String::new();
    out.push_str(&format!("{:>8}", "density"));
    for kind in &kinds {
        out.push_str(&format!("{:>16}", kind.label()));
    }
    out.push('\n');
    for point in &result.points {
        out.push_str(&format!("{:>8.2}", point.density));
        for kind in &kinds {
            out.push_str(&format!("{:>16}", fmt(point.period(*kind))));
        }
        out.push('\n');
    }
    out
}

/// Formats the period ratios against a reference curve (Figure 11 uses the
/// `scatter` curve in sub-figures (a)/(c) and the `lower bound` curve in
/// (b)/(d)).
pub fn format_ratio_table(result: &SweepResult, reference: HeuristicKind) -> String {
    let kinds: Vec<HeuristicKind> = result.config.kinds.clone();
    let mut out = String::new();
    out.push_str(&format!(
        "ratio of periods over the '{}' reference\n",
        reference.label()
    ));
    out.push_str(&format!("{:>8}", "density"));
    for kind in &kinds {
        out.push_str(&format!("{:>16}", kind.label()));
    }
    out.push('\n');
    for point in &result.points {
        out.push_str(&format!("{:>8.2}", point.density));
        for kind in &kinds {
            out.push_str(&format!("{:>16}", fmt(point.ratio(*kind, reference))));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepConfig, SweepPoint};
    use pm_platform::topology::PlatformClass;

    fn fake_result() -> SweepResult {
        let config = SweepConfig {
            class: PlatformClass::Small,
            paper_scale: false,
            platforms: 1,
            densities: vec![0.5],
            seed: 0,
            kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
            realize: false,
        };
        SweepResult {
            config,
            points: vec![SweepPoint {
                density: 0.5,
                mean_period: vec![(HeuristicKind::Scatter, 4.0), (HeuristicKind::Mcph, 2.0)],
                realization: Vec::new(),
                instances: 1,
            }],
        }
    }

    #[test]
    fn tables_contain_labels_and_values() {
        let result = fake_result();
        let periods = format_period_table(&result);
        assert!(periods.contains("scatter"));
        assert!(periods.contains("MCPH"));
        assert!(periods.contains("4.0000"));
        let ratios = format_ratio_table(&result, HeuristicKind::Scatter);
        assert!(ratios.contains("0.5000")); // MCPH / scatter
        assert!(ratios.contains("1.0000")); // scatter / scatter
    }

    #[test]
    fn infinite_values_are_printed_as_inf() {
        let mut result = fake_result();
        result.points[0].mean_period[1].1 = f64::INFINITY;
        let periods = format_period_table(&result);
        assert!(periods.contains("inf"));
    }
}
