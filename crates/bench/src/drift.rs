//! The `--drift` scenario sweep: long-lived [`Session`]s on drifting
//! platforms.
//!
//! Where the Figure 11 sweep measures *one-shot* solves over a platform
//! grid, the drift sweep measures what the stateful session API buys when
//! the platform keeps changing under a running schedule: each scenario
//! builds one [`Session`] per `(class, seed, platform)` instance, applies a
//! seeded trace of edge-cost walks and node-churn events, and after every
//! event re-solves and re-realizes the configured heuristic kinds —
//! recording re-solve wall time, warm-hit rate, throughput delta and the
//! simulator-measured [`TransitionCost`] of swapping the periodic schedule.
//!
//! Determinism: events are generated from the configuration seed only,
//! sessions evolve sequentially inside their scenario, and scenarios are
//! collected in configuration order — two runs (at any thread count)
//! produce byte-identical artifacts except for the `"solve_ms"` wall-time
//! lines, which CI filters exactly as it does for the Figure 11 sweep.

use crate::emit::{class_key, json_f64, kind_key};
use pm_core::report::HeuristicKind;
use pm_core::session::{Session, SessionError, TransitionCost};
use pm_core::{FormulationError, RealizeError};
use pm_platform::graph::{EdgeId, NodeId};
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the drift artifact (`fig11 --drift --json`). v5 continues
/// the fig11 artifact lineage: it is the first schema carrying per-step
/// session measurements (warm-hit rates, transition costs) instead of
/// per-density aggregates.
pub const DRIFT_JSON_SCHEMA: &str = "pm-bench/fig11-drift/v5";

/// Edge costs drift multiplicatively within this clamp, so a long random
/// walk can neither collapse an edge to zero nor blow the LP scaling up.
const COST_CLAMP: (f64, f64) = (0.05, 50.0);

/// Configuration of a drift batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Platform classes to sweep.
    pub classes: Vec<PlatformClass>,
    /// Base seeds; each `(class, seed)` pair contributes `platforms`
    /// scenarios.
    pub seeds: Vec<u64>,
    /// Random platforms per `(class, seed)` cell.
    pub platforms: usize,
    /// Target density of the sampled instances.
    pub density: f64,
    /// Drift events applied per scenario (step 0 is the pre-drift
    /// baseline).
    pub steps: usize,
    /// Paper-scale platform sizes.
    pub paper_scale: bool,
    /// Heuristic kinds re-solved and re-realized after every event.
    pub kinds: Vec<HeuristicKind>,
    /// Print per-scenario progress to stderr.
    pub progress: bool,
}

impl DriftConfig {
    /// The default `fig11 --drift` configuration.
    pub fn quick() -> Self {
        DriftConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42, 43],
            platforms: 2,
            density: 0.5,
            steps: 8,
            paper_scale: false,
            kinds: vec![
                HeuristicKind::Scatter,
                HeuristicKind::Broadcast,
                HeuristicKind::Mcph,
            ],
            progress: false,
        }
    }

    /// The CI drift-smoke configuration: tiny, cheap, and restricted to the
    /// always-realizable kinds so the realization gate (zero violations,
    /// gap ≤ 1%) is a hard invariant rather than a lucky draw.
    pub fn smoke() -> Self {
        DriftConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42],
            platforms: 1,
            density: 0.5,
            steps: 6,
            paper_scale: false,
            kinds: vec![
                HeuristicKind::Scatter,
                HeuristicKind::Broadcast,
                HeuristicKind::Mcph,
            ],
            progress: false,
        }
    }
}

/// Per-kind measurements of one drift step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftKindRecord {
    /// The heuristic kind.
    pub kind: HeuristicKind,
    /// Period after the re-solve.
    pub period: f64,
    /// Simulated steady-state throughput of the re-realized schedule.
    pub simulated_throughput: f64,
    /// Change of simulated throughput against the previous step (0 at the
    /// baseline step).
    pub throughput_delta: f64,
    /// `|simulated − lp| / lp` of the re-realization.
    pub realization_gap: f64,
    /// One-port violations of the re-realized schedule (0 for valid ones).
    pub one_port_violations: u64,
    /// Trees in the re-realized combination.
    pub trees: usize,
    /// LP solves of the step (re-solve + packing LPs of re-realization).
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// The switchover cost against the previous realization (absent at the
    /// baseline step).
    pub transition: Option<TransitionCost>,
}

/// One drift step: the applied event plus the per-kind measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftStep {
    /// Step index (0 = pre-drift baseline).
    pub step: usize,
    /// Stable description of the applied event (`"init"` at step 0).
    pub event: String,
    /// Wall-clock milliseconds of the step's solves + realizations
    /// (nondeterministic; filtered before byte comparisons).
    pub solve_ms: u64,
    /// Per-kind measurements, in configuration kind order.
    pub kinds: Vec<DriftKindRecord>,
}

/// One `(class, seed, platform)` scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftScenario {
    /// Platform class.
    pub class: PlatformClass,
    /// Base seed of the cell.
    pub seed: u64,
    /// Platform index within the cell.
    pub platform: usize,
    /// Nodes of the platform.
    pub nodes: usize,
    /// Targets of the sampled instance.
    pub targets: usize,
    /// Baseline step plus one step per drift event.
    pub steps: Vec<DriftStep>,
}

/// Aggregate accounting of a drift batch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DriftMeta {
    /// Total wall-clock milliseconds across scenarios (nondeterministic).
    pub solve_ms: u64,
    /// Linear programs solved.
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Scenarios run.
    pub scenarios: u64,
}

impl DriftMeta {
    /// Warm-hit rate across every LP of the batch.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.lp_solves > 0 {
            self.warm_hits as f64 / self.lp_solves as f64
        } else {
            0.0
        }
    }
}

/// The result of a [`run_drift`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftResult {
    /// The configuration that produced the result.
    pub config: DriftConfig,
    /// One scenario per `(class, seed, platform)`, in configuration order.
    pub scenarios: Vec<DriftScenario>,
    /// Aggregate accounting.
    pub meta: DriftMeta,
}

/// The next drift event of a scenario's seeded trace, applied to `session`.
/// Returns its stable description.
fn apply_event(session: &mut Session, disabled: &mut Vec<NodeId>, rng: &mut StdRng) -> String {
    let platform_edges = session.instance().platform.edge_count();
    // 70% edge-cost walk, 30% node churn; churn falls back to an edge walk
    // when no node can be safely toggled.
    if rng.gen_range(0u32..100) >= 70 {
        if !disabled.is_empty() && rng.gen_bool(0.5) {
            let i = rng.gen_range(0..disabled.len());
            let node = disabled.swap_remove(i);
            session.enable_node(node).expect("node exists");
            return format!("enable {node}");
        }
        if let Some(node) = pick_disable_candidate(session, rng) {
            session
                .disable_node(node)
                .expect("candidate is disableable");
            disabled.push(node);
            return format!("disable {node}");
        }
    }
    let edge = EdgeId(rng.gen_range(0..platform_edges) as u32);
    let old = session.instance().platform.cost(edge);
    let factor: f64 = rng.gen_range(0.7..1.4);
    let cost = (old * factor).clamp(COST_CLAMP.0, COST_CLAMP.1);
    session.set_edge_cost(edge, cost).expect("edge exists");
    format!("edge {edge} cost {cost}")
}

/// A node that can be disabled while keeping every remaining active node
/// reachable from the source (so every configured kind stays solvable).
/// Shared with the `--faults` sweep, whose crash step needs the same
/// safety guarantee.
pub(crate) fn pick_disable_candidate(session: &Session, rng: &mut StdRng) -> Option<NodeId> {
    let instance = session.instance();
    let platform = &instance.platform;
    let mask = session.mask();
    let mut eligible: Vec<NodeId> = mask
        .iter()
        .filter(|&v| v != instance.source && !instance.is_target(v))
        .filter(|&v| {
            let candidate = mask.without(v);
            let seen = candidate.reachable_from(platform, instance.source);
            candidate.to_nodes().into_iter().all(|u| seen[u.index()])
        })
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..eligible.len());
    Some(eligible.swap_remove(i))
}

/// Runs one scenario: baseline solves + realizations, then `steps` drift
/// events each followed by a re-solve + re-realization of every kind.
fn run_scenario(
    config: &DriftConfig,
    class: PlatformClass,
    seed: u64,
    platform_index: usize,
) -> DriftScenario {
    let mut generator = if config.paper_scale {
        TiersLikeGenerator::paper_scale(class, seed + platform_index as u64)
    } else {
        TiersLikeGenerator::reduced_scale(class, seed + platform_index as u64)
    };
    let topology = generator.generate();
    let mut rng =
        StdRng::seed_from_u64(seed ^ ((platform_index as u64) << 32) ^ 0xd81f_7ad5_4c0e_99b1);
    let instance = topology.sample_instance(config.density, &mut rng);
    let nodes = instance.platform.node_count();
    let targets = instance.target_count();
    let mut session = Session::new(instance);
    let mut disabled: Vec<NodeId> = Vec::new();
    let mut previous_throughput: Vec<Option<f64>> = vec![None; config.kinds.len()];

    let mut steps = Vec::with_capacity(config.steps + 1);
    for step in 0..=config.steps {
        let event = if step == 0 {
            "init".to_string()
        } else {
            apply_event(&mut session, &mut disabled, &mut rng)
        };
        let started = Instant::now();
        let mut kinds = Vec::with_capacity(config.kinds.len());
        for (ki, &kind) in config.kinds.iter().enumerate() {
            let record = drive_kind(&mut session, kind, &mut previous_throughput[ki]);
            kinds.push(record);
        }
        steps.push(DriftStep {
            step,
            event,
            solve_ms: started.elapsed().as_millis() as u64,
            kinds,
        });
    }
    DriftScenario {
        class,
        seed,
        platform: platform_index,
        nodes,
        targets,
        steps,
    }
}

/// One kind's re-solve + re-realization on the session, with the
/// throughput-delta bookkeeping against the previous step.
fn drive_kind(
    session: &mut Session,
    kind: HeuristicKind,
    previous_throughput: &mut Option<f64>,
) -> DriftKindRecord {
    let mut record = DriftKindRecord {
        kind,
        period: f64::INFINITY,
        simulated_throughput: f64::INFINITY,
        throughput_delta: 0.0,
        realization_gap: f64::INFINITY,
        one_port_violations: 0,
        trees: 0,
        lp_solves: 0,
        warm_hits: 0,
        warm_misses: 0,
        transition: None,
    };
    match session.solve(kind) {
        Ok(solve) => {
            record.period = solve.result.period;
            record.lp_solves += solve.stats.lp_solves;
            record.warm_hits += solve.stats.warm_hits;
            record.warm_misses += solve.stats.warm_misses;
        }
        // The event generator keeps every active node reachable, so an
        // unreachable solve is a bug worth failing loudly on.
        Err(e @ SessionError::Formulation(FormulationError::Unreachable(_))) => {
            panic!("drift event trace produced an unreachable instance: {e}")
        }
        Err(e) => panic!("drift re-solve failed: {e}"),
    }
    match session.re_realize(kind) {
        Ok(re) => {
            record.simulated_throughput = re.realization.simulated.throughput;
            record.realization_gap = re.realization.realization_gap;
            record.one_port_violations = re.realization.simulated.one_port_violations as u64;
            record.trees = re.realization.tree_set.len();
            record.lp_solves += re.stats.lp_solves;
            record.warm_hits += re.stats.warm_hits;
            record.warm_misses += re.stats.warm_misses;
            record.transition = re.transition;
            record.throughput_delta = previous_throughput
                .map(|p| re.realization.simulated.throughput - p)
                .unwrap_or(0.0);
            *previous_throughput = Some(re.realization.simulated.throughput);
        }
        Err(e @ SessionError::Realize(RealizeError::Schedule(_) | RealizeError::Packing(_))) => {
            panic!("drift re-realization pipeline failure: {e}")
        }
        // Decomposition / not-realizable outcomes are recorded as gaps of
        // +∞ (JSON null) without poisoning the deltas.
        Err(_) => {}
    }
    record
}

/// Runs the drift batch: every `(class, seed, platform)` scenario on the
/// rayon pool, collected in configuration order.
pub fn run_drift(config: &DriftConfig) -> DriftResult {
    let mut cells: Vec<(PlatformClass, u64, usize)> = Vec::new();
    for &class in &config.classes {
        for &seed in &config.seeds {
            for pi in 0..config.platforms {
                cells.push((class, seed, pi));
            }
        }
    }
    let scenarios: Vec<DriftScenario> = cells
        .into_par_iter()
        .map(|(class, seed, pi)| {
            let scenario = run_scenario(config, class, seed, pi);
            if config.progress {
                eprintln!(
                    "fig11: drift scenario class={class:?} seed={seed} platform={pi} done \
                     ({} steps)",
                    scenario.steps.len()
                );
            }
            scenario
        })
        .collect();

    let mut meta = DriftMeta {
        scenarios: scenarios.len() as u64,
        ..DriftMeta::default()
    };
    for scenario in &scenarios {
        for step in &scenario.steps {
            meta.solve_ms += step.solve_ms;
            for kind in &step.kinds {
                meta.lp_solves += kind.lp_solves;
                meta.warm_hits += kind.warm_hits;
                meta.warm_misses += kind.warm_misses;
            }
        }
    }
    DriftResult {
        config: config.clone(),
        scenarios,
        meta,
    }
}

fn push_transition_json(out: &mut String, transition: Option<&TransitionCost>) {
    match transition {
        None => out.push_str("null"),
        Some(t) => out.push_str(&format!(
            "{{\"drain_time\": {}, \"first_delivery_latency\": {}, \"switch_time\": {}, \
             \"multicasts_lost\": {}, \"throughput_delta\": {}, \"trees_kept\": {}, \
             \"trees_added\": {}, \"trees_dropped\": {}}}",
            json_f64(t.drain_time),
            json_f64(t.first_delivery_latency),
            json_f64(t.switch_time),
            json_f64(t.multicasts_lost),
            json_f64(t.throughput_delta),
            t.trees_kept,
            t.trees_added,
            t.trees_dropped,
        )),
    }
}

/// The drift batch as a pretty-printed schema-v5 JSON document.
///
/// Every `"solve_ms"` field (the meta total and each step's wall time) sits
/// on its own line, so the same `grep -v '"solve_ms"'` filter CI applies to
/// the sweep artifacts makes two drift runs byte-comparable.
pub fn drift_to_json(result: &DriftResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{DRIFT_JSON_SCHEMA}\",\n"));
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"solve_ms\": {},\n", result.meta.solve_ms));
    out.push_str(&format!("    \"lp_solves\": {},\n", result.meta.lp_solves));
    out.push_str(&format!("    \"warm_hits\": {},\n", result.meta.warm_hits));
    out.push_str(&format!(
        "    \"warm_misses\": {},\n",
        result.meta.warm_misses
    ));
    out.push_str(&format!(
        "    \"warm_hit_rate\": {},\n",
        json_f64(result.meta.warm_hit_rate())
    ));
    out.push_str(&format!("    \"scenarios\": {},\n", result.meta.scenarios));
    out.push_str(&format!(
        "    \"steps_per_scenario\": {}\n",
        result.config.steps
    ));
    out.push_str("  },\n");
    out.push_str("  \"scenarios\": [\n");
    for (si, scenario) in result.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"class\": \"{}\",\n",
            class_key(scenario.class)
        ));
        out.push_str(&format!("      \"seed\": {},\n", scenario.seed));
        out.push_str(&format!("      \"platform\": {},\n", scenario.platform));
        out.push_str(&format!("      \"nodes\": {},\n", scenario.nodes));
        out.push_str(&format!("      \"targets\": {},\n", scenario.targets));
        out.push_str("      \"steps\": [\n");
        for (i, step) in scenario.steps.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!("          \"step\": {},\n", step.step));
            out.push_str(&format!("          \"event\": \"{}\",\n", step.event));
            out.push_str(&format!("          \"solve_ms\": {},\n", step.solve_ms));
            out.push_str("          \"kinds\": {");
            let entries: Vec<String> = step
                .kinds
                .iter()
                .map(|k| {
                    let mut entry = format!(
                        "\"{}\": {{\"period\": {}, \"simulated_throughput\": {}, \
                         \"throughput_delta\": {}, \"warm_hit_rate\": {}, \"lp_solves\": {}, \
                         \"warm_hits\": {}, \"warm_misses\": {}, \"realization_gap\": {}, \
                         \"one_port_violations\": {}, \"trees\": {}, \"transition\": ",
                        kind_key(k.kind),
                        json_f64(k.period),
                        json_f64(k.simulated_throughput),
                        json_f64(k.throughput_delta),
                        json_f64(if k.lp_solves > 0 {
                            k.warm_hits as f64 / k.lp_solves as f64
                        } else {
                            0.0
                        }),
                        k.lp_solves,
                        k.warm_hits,
                        k.warm_misses,
                        json_f64(k.realization_gap),
                        k.one_port_violations,
                        k.trees,
                    );
                    push_transition_json(&mut entry, k.transition.as_ref());
                    entry.push('}');
                    entry
                })
                .collect();
            out.push_str(&entries.join(", "));
            out.push_str("}\n");
            let comma = if i + 1 < scenario.steps.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("        }}{comma}\n"));
        }
        out.push_str("      ]\n");
        let comma = if si + 1 < result.scenarios.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DriftConfig {
        DriftConfig {
            classes: vec![PlatformClass::Small],
            seeds: vec![42],
            platforms: 1,
            density: 0.5,
            steps: 3,
            paper_scale: false,
            kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
            progress: false,
        }
    }

    #[test]
    fn drift_scenarios_step_and_stay_valid() {
        let result = run_drift(&tiny_config());
        assert_eq!(result.scenarios.len(), 1);
        let scenario = &result.scenarios[0];
        assert_eq!(scenario.steps.len(), 4);
        assert_eq!(scenario.steps[0].event, "init");
        for step in &scenario.steps {
            for kind in &step.kinds {
                assert!(
                    kind.period.is_finite(),
                    "{:?} at step {}",
                    kind.kind,
                    step.step
                );
                assert_eq!(kind.one_port_violations, 0);
                assert!(kind.realization_gap < 0.01, "gap {}", kind.realization_gap);
                if step.step > 0 {
                    assert!(
                        kind.transition.is_some(),
                        "post-drift steps carry transitions"
                    );
                }
            }
        }
        // Warm starts dominate after the baseline step.
        assert!(result.meta.warm_hit_rate() > 0.5);
    }

    #[test]
    fn drift_json_is_deterministic_modulo_wall_time() {
        let config = tiny_config();
        let a = run_drift(&config);
        let b = run_drift(&config);
        let filter = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"solve_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(filter(&drift_to_json(&a)), filter(&drift_to_json(&b)));
        assert!(drift_to_json(&a).contains(DRIFT_JSON_SCHEMA));
    }
}
