//! The `--faults` frontier sweep: robust redundant realizations under
//! fault injection.
//!
//! Where the `--drift` sweep measures what the stateful session buys on a
//! *changing* platform, the faults sweep measures what redundancy buys on
//! an *unreliable* one: for every `(class, seed, platform)` scenario it
//! solves one heuristic kind, then realizes the solution robustly at each
//! requested disjointness level `f` ([`pm_core::realize_robust`]) and
//! replays the redundant schedule under a grid of i.i.d. message-loss
//! rates.  The artifact records the throughput-vs-redundancy/delivery
//! frontier — throughput sacrificed and delivery gained as `f` grows —
//! plus one crash/recovery round driven through
//! [`Session::re_realize_robust`] so the switchover [`TransitionCost`]s of
//! a node failure are measured, not modelled.
//!
//! Determinism: fault draws are counter-based ([`FaultModel`]), scenarios
//! evolve sequentially and are collected in configuration order, so two
//! runs (at any thread count) produce byte-identical artifacts except for
//! the `"solve_ms"` wall-time lines, which CI filters exactly as it does
//! for the sweep and drift artifacts.

use crate::drift::pick_disable_candidate;
use crate::emit::{class_key, json_f64, kind_key};
use pm_core::report::HeuristicKind;
use pm_core::session::{Session, TransitionCost};
use pm_core::{RobustOptions, RobustRealization};
use pm_platform::graph::{NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use pm_sim::{FaultModel, SimulationConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the faults artifact (`fig11 --faults --json`). v6
/// continues the fig11 artifact lineage: the first schema carrying
/// fault-injected delivery measurements and the redundancy frontier.
pub const FAULTS_JSON_SCHEMA: &str = "pm-bench/fig11-faults/v6";

/// Absolute slack allowed between a measured delivery ratio and the
/// analytic per-target floor [`RobustRealization::expected_delivery`]:
/// the replay is a finite sample of the loss process, so the measured
/// overall ratio may sit slightly below the worst-target expectation.
const DELIVERY_TOLERANCE: f64 = 0.08;

/// Configuration of a faults batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsConfig {
    /// Platform classes to sweep.
    pub classes: Vec<PlatformClass>,
    /// Base seeds; each `(class, seed)` pair contributes `platforms`
    /// scenarios.
    pub seeds: Vec<u64>,
    /// Random platforms per `(class, seed)` cell.
    pub platforms: usize,
    /// Target density of the sampled instances.
    pub density: f64,
    /// Uniform i.i.d. loss rates replayed against every robust schedule
    /// (must contain `0.0` for the fault-free gate to be meaningful).
    pub loss_rates: Vec<f64>,
    /// Requested disjointness levels `f`, in ascending order.
    pub redundancy: Vec<usize>,
    /// Fraction of the period reserved for acknowledgement slots.
    pub ack_overhead: f64,
    /// The heuristic kind whose steady state is realized robustly.
    pub kind: HeuristicKind,
    /// Periods replayed per delivery measurement.
    pub horizon: usize,
    /// Warm-up periods excluded from the throughput accounting.
    pub warmup: usize,
    /// Paper-scale platform sizes.
    pub paper_scale: bool,
    /// Print per-scenario progress to stderr.
    pub progress: bool,
}

impl FaultsConfig {
    /// The default `fig11 --faults` configuration.
    pub fn quick() -> Self {
        FaultsConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42, 43],
            platforms: 2,
            density: 0.5,
            loss_rates: vec![0.0, 0.02, 0.05, 0.1],
            redundancy: vec![1, 2, 3],
            ack_overhead: 0.05,
            kind: HeuristicKind::LowerBound,
            horizon: 160,
            warmup: 16,
            paper_scale: false,
            progress: false,
        }
    }

    /// The CI faults-smoke configuration: tiny and cheap, but still
    /// exercising the `f = 1` vs `f = 2` frontier and a crash round.
    pub fn smoke() -> Self {
        FaultsConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42],
            platforms: 1,
            density: 0.5,
            loss_rates: vec![0.0, 0.05],
            redundancy: vec![1, 2],
            ack_overhead: 0.05,
            kind: HeuristicKind::LowerBound,
            horizon: 120,
            warmup: 12,
            paper_scale: false,
            progress: false,
        }
    }

    /// The replay horizon/warm-up as a simulator configuration (faults and
    /// redundancy are set per measurement).
    fn sim_config(&self) -> SimulationConfig {
        SimulationConfig {
            horizon: self.horizon,
            warmup: self.warmup,
            ..SimulationConfig::default()
        }
    }
}

/// One loss rate replayed against one robust schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossPoint {
    /// The injected uniform i.i.d. loss rate.
    pub loss: f64,
    /// Overall fraction of (message, target) deliveries that succeeded.
    pub delivery_ratio: f64,
    /// Fully delivered multicasts per unit time under this loss rate.
    pub goodput: f64,
    /// The analytic worst-target delivery floor at this loss rate.
    pub expected_floor: f64,
    /// Measured delivery within `DELIVERY_TOLERANCE` of the floor (and
    /// exactly `1.0` at loss `0.0`).
    pub meets_expected: bool,
}

/// One disjointness level of a scenario's frontier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierCell {
    /// The requested disjointness `f`.
    pub f: usize,
    /// Trees in the selected redundant combination.
    pub trees: usize,
    /// Worst-target union max-flow of the selection.
    pub achieved_disjointness: usize,
    /// Worst-target count of edge-disjoint per-tree delivery paths (the
    /// survival guarantee).
    pub path_disjointness: usize,
    /// Ack-costed period of the redundant schedule.
    pub period: f64,
    /// Throughput of the redundant schedule (`1 / period`).
    pub robust_throughput: f64,
    /// Non-redundant packing-LP throughput over the same pool.
    pub baseline_throughput: f64,
    /// `1 − robust / baseline` — the price of redundancy.
    pub throughput_sacrifice: f64,
    /// Replay-verified: every target still delivers under total loss of
    /// any single schedule edge (checked when `path_disjointness ≥ 2`).
    pub survives_single_edge_loss: bool,
    /// Warm-up fill latency of the fault-free replay.
    pub fill_latency: f64,
    /// Wall-clock milliseconds of the cell's realization + replays
    /// (nondeterministic; filtered before byte comparisons).
    pub solve_ms: u64,
    /// LP solves of the cell (re-solve + packing LPs).
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// One measurement per configured loss rate, in configuration order.
    pub losses: Vec<LossPoint>,
}

/// One crash or recovery round of a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsTransition {
    /// Stable description of the applied event.
    pub event: String,
    /// Throughput of the robust realization after the event.
    pub robust_throughput: f64,
    /// Worst-target per-tree path disjointness after the event.
    pub path_disjointness: usize,
    /// The simulator-measured switchover cost against the previous robust
    /// realization.
    pub transition: Option<TransitionCost>,
}

/// One `(class, seed, platform)` scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsScenario {
    /// Platform class.
    pub class: PlatformClass,
    /// Base seed of the cell.
    pub seed: u64,
    /// Platform index within the cell.
    pub platform: usize,
    /// Nodes of the platform.
    pub nodes: usize,
    /// Targets of the sampled instance.
    pub targets: usize,
    /// Worst-target edge-disjoint-path capability of the full platform
    /// (caps every achievable `f`).
    pub capability: usize,
    /// One cell per configured disjointness level, in configuration order.
    pub frontier: Vec<FrontierCell>,
    /// The crash round (absent when no node can be safely disabled).
    pub crash: Option<FaultsTransition>,
    /// The matching recovery round.
    pub recovery: Option<FaultsTransition>,
}

/// The deterministic worked-example frontier of a faults batch.
///
/// Random Tiers-like scenarios almost always contain a single-homed
/// target (worst-target capability 1, like the paper's Figure 1 whose
/// `P7` cut is a single edge), so their `f ≥ 2` cells can only report
/// *partial* redundancy. The dual-homed worked example — a source feeding
/// three targets through two edge-disjoint relay branches — supports two
/// edge-disjoint paths to every target, so this block is where the
/// artifact (and CI) pins the hard guarantee: `f = 2` achieves path
/// disjointness 2 and survives any single-edge total loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkedExample {
    /// Nodes of the dual-homed platform.
    pub nodes: usize,
    /// Targets of the dual-homed instance.
    pub targets: usize,
    /// Worst-target edge-disjoint-path capability (2 by construction).
    pub capability: usize,
    /// One cell per configured disjointness level.
    pub frontier: Vec<FrontierCell>,
}

/// Aggregate accounting of a faults batch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FaultsMeta {
    /// Total wall-clock milliseconds across scenarios (nondeterministic).
    pub solve_ms: u64,
    /// Linear programs solved.
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Scenarios run.
    pub scenarios: u64,
}

impl FaultsMeta {
    /// Warm-hit rate across every LP of the batch.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.lp_solves > 0 {
            self.warm_hits as f64 / self.lp_solves as f64
        } else {
            0.0
        }
    }
}

/// The result of a [`run_faults`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsResult {
    /// The configuration that produced the result.
    pub config: FaultsConfig,
    /// The deterministic Figure 1 frontier (full `f = 2` redundancy).
    pub worked_example: WorkedExample,
    /// One scenario per `(class, seed, platform)`, in configuration order.
    pub scenarios: Vec<FaultsScenario>,
    /// Aggregate accounting.
    pub meta: FaultsMeta,
}

/// A deterministic per-measurement fault seed: mixes the scenario seed
/// with the disjointness level and the loss rate's bit pattern so no two
/// replays of a batch share a draw stream.
fn fault_seed(seed: u64, f: usize, loss: f64) -> u64 {
    seed ^ ((f as u64) << 48) ^ loss.to_bits().rotate_left(17)
}

/// Replays a robust schedule under a uniform i.i.d. loss rate and returns
/// the measured loss point.
fn measure_loss_point(
    session: &Session,
    realization: &RobustRealization,
    sim: &SimulationConfig,
    loss: f64,
    seed: u64,
) -> LossPoint {
    let instance = session.instance();
    let config = SimulationConfig {
        faults: (loss > 0.0).then(|| FaultModel::lossy(seed, loss)),
        redundant: true,
        ..sim.clone()
    };
    let report = Simulator::new(config)
        .run_schedule_on(
            &instance.platform,
            session.mask(),
            &realization.schedule,
            &instance.targets,
        )
        .expect("robust schedules never reference masked nodes");
    let expected_floor = realization.expected_delivery(&instance.platform, loss);
    let meets_expected = if loss == 0.0 {
        report.delivery_ratio == 1.0
    } else {
        report.delivery_ratio + DELIVERY_TOLERANCE >= expected_floor
    };
    LossPoint {
        loss,
        delivery_ratio: report.delivery_ratio,
        goodput: report.goodput,
        expected_floor,
        meets_expected,
    }
}

/// Realizes the session's solution robustly at every configured
/// disjointness level, replaying each redundant schedule over the loss
/// grid. Returns the frontier plus the options of the last level (the
/// crash round re-uses them). `seed` salts the fault draws.
fn run_frontier(
    session: &mut Session,
    config: &FaultsConfig,
    seed: u64,
) -> (Vec<FrontierCell>, RobustOptions) {
    let sim = config.sim_config();
    let mut frontier = Vec::with_capacity(config.redundancy.len());
    let mut options = RobustOptions {
        ack_overhead: config.ack_overhead,
        verify_loss: config
            .loss_rates
            .iter()
            .copied()
            .find(|&l| l > 0.0)
            .unwrap_or(0.05),
        sim: sim.clone(),
        ..RobustOptions::default()
    };
    for &f in &config.redundancy {
        let started = Instant::now();
        options.disjointness = f;
        options.seed = fault_seed(seed, f, 0.0);
        let solve = session.solve(config.kind).expect("faults re-solve");
        let re = session
            .re_realize_robust(config.kind, &options)
            .expect("robust realization of a reachable instance");
        let r = re.realization;
        let losses: Vec<LossPoint> = config
            .loss_rates
            .iter()
            .map(|&loss| measure_loss_point(session, &r, &sim, loss, fault_seed(seed, f, loss)))
            .collect();
        frontier.push(FrontierCell {
            f,
            trees: r.tree_set.len(),
            achieved_disjointness: r.achieved_disjointness,
            path_disjointness: r.path_disjointness,
            period: r.period,
            robust_throughput: r.robust_throughput,
            baseline_throughput: r.baseline_throughput,
            throughput_sacrifice: r.throughput_sacrifice(),
            survives_single_edge_loss: r.survives_single_edge_loss,
            fill_latency: r.fault_free.fill_latency,
            solve_ms: started.elapsed().as_millis() as u64,
            lp_solves: solve.stats.lp_solves + re.stats.lp_solves,
            warm_hits: solve.stats.warm_hits + re.stats.warm_hits,
            warm_misses: solve.stats.warm_misses + re.stats.warm_misses,
            losses,
        });
    }
    (frontier, options)
}

/// Worst-target edge-disjoint-path capability of a session's instance.
fn session_capability(session: &Session) -> usize {
    let instance = session.instance();
    instance
        .targets
        .iter()
        .map(|&t| instance.platform.edge_disjoint_paths(instance.source, t))
        .min()
        .unwrap_or(0)
}

/// Runs one scenario: solve once, realize robustly at every disjointness
/// level with the loss-rate replays, then one crash/recovery round at the
/// largest level.
fn run_scenario(
    config: &FaultsConfig,
    class: PlatformClass,
    seed: u64,
    platform_index: usize,
) -> FaultsScenario {
    let mut generator = if config.paper_scale {
        TiersLikeGenerator::paper_scale(class, seed + platform_index as u64)
    } else {
        TiersLikeGenerator::reduced_scale(class, seed + platform_index as u64)
    };
    let topology = generator.generate();
    let mut rng =
        StdRng::seed_from_u64(seed ^ ((platform_index as u64) << 32) ^ 0xd81f_7ad5_4c0e_99b1);
    let instance = topology.sample_instance(config.density, &mut rng);
    let nodes = instance.platform.node_count();
    let targets = instance.target_count();
    let mut session = Session::new(instance);
    let capability = session_capability(&session);
    let (frontier, options) = run_frontier(&mut session, config, seed);

    // One crash/recovery round at the frontier's largest disjointness: the
    // session's previous robust realization is the last frontier cell, so
    // the recorded transitions measure exactly the degradation of losing a
    // node and the cost of winning it back.
    let mut crash = None;
    let mut recovery = None;
    if let Some(node) = pick_disable_candidate(&session, &mut rng) {
        session
            .disable_node(node)
            .expect("candidate is disableable");
        session.solve(config.kind).expect("masked re-solve");
        if let Ok(re) = session.re_realize_robust(config.kind, &options) {
            crash = Some(FaultsTransition {
                event: format!("disable {node}"),
                robust_throughput: re.realization.robust_throughput,
                path_disjointness: re.realization.path_disjointness,
                transition: re.transition,
            });
        }
        session.enable_node(node).expect("node exists");
        session.solve(config.kind).expect("restored re-solve");
        if let Ok(re) = session.re_realize_robust(config.kind, &options) {
            recovery = Some(FaultsTransition {
                event: format!("enable {node}"),
                robust_throughput: re.realization.robust_throughput,
                path_disjointness: re.realization.path_disjointness,
                transition: re.transition,
            });
        }
    }

    FaultsScenario {
        class,
        seed,
        platform: platform_index,
        nodes,
        targets,
        capability,
        frontier,
        crash,
        recovery,
    }
}

/// The dual-homed worked-example instance: source `S` reaches each of the
/// three targets through both relay branches (`S → A → Tᵢ` and
/// `S → B → Tᵢ` are edge-disjoint), with heterogeneous one-port costs so
/// the two branches are not interchangeable.
fn worked_example_instance() -> MulticastInstance {
    let mut b = PlatformBuilder::new();
    let s = b.add_named_node("S");
    let relay_a = b.add_named_node("A");
    let relay_b = b.add_named_node("B");
    let targets: Vec<NodeId> = (0..3).map(|i| b.add_named_node(&format!("T{i}"))).collect();
    b.add_edge(s, relay_a, 1.0).expect("uplink A");
    b.add_edge(s, relay_b, 1.2).expect("uplink B");
    for &t in &targets {
        b.add_edge(relay_a, t, 0.5).expect("branch A");
        b.add_edge(relay_b, t, 0.6).expect("branch B");
    }
    let platform = b.build().expect("worked-example platform");
    MulticastInstance::new(platform, s, targets).expect("worked-example instance")
}

/// Runs the dual-homed worked-example frontier (see [`WorkedExample`]).
fn run_worked_example(config: &FaultsConfig) -> WorkedExample {
    let instance = worked_example_instance();
    let nodes = instance.platform.node_count();
    let targets = instance.target_count();
    let mut session = Session::new(instance);
    let capability = session_capability(&session);
    let (frontier, _) = run_frontier(&mut session, config, 0xF1);
    WorkedExample {
        nodes,
        targets,
        capability,
        frontier,
    }
}

/// Runs the faults batch: the Figure 1 worked example plus every
/// `(class, seed, platform)` scenario on the rayon pool, collected in
/// configuration order.
pub fn run_faults(config: &FaultsConfig) -> FaultsResult {
    let mut cells: Vec<(PlatformClass, u64, usize)> = Vec::new();
    for &class in &config.classes {
        for &seed in &config.seeds {
            for pi in 0..config.platforms {
                cells.push((class, seed, pi));
            }
        }
    }
    let scenarios: Vec<FaultsScenario> = cells
        .into_par_iter()
        .map(|(class, seed, pi)| {
            let scenario = run_scenario(config, class, seed, pi);
            if config.progress {
                eprintln!(
                    "fig11: faults scenario class={class:?} seed={seed} platform={pi} done \
                     ({} frontier cells)",
                    scenario.frontier.len()
                );
            }
            scenario
        })
        .collect();

    let worked_example = run_worked_example(config);

    let mut meta = FaultsMeta {
        scenarios: scenarios.len() as u64,
        ..FaultsMeta::default()
    };
    for cell in worked_example
        .frontier
        .iter()
        .chain(scenarios.iter().flat_map(|s| &s.frontier))
    {
        meta.solve_ms += cell.solve_ms;
        meta.lp_solves += cell.lp_solves;
        meta.warm_hits += cell.warm_hits;
        meta.warm_misses += cell.warm_misses;
    }
    FaultsResult {
        config: config.clone(),
        worked_example,
        scenarios,
        meta,
    }
}

fn push_transition_json(out: &mut String, transition: Option<&TransitionCost>) {
    match transition {
        None => out.push_str("null"),
        Some(t) => out.push_str(&format!(
            "{{\"drain_time\": {}, \"first_delivery_latency\": {}, \"switch_time\": {}, \
             \"multicasts_lost\": {}, \"throughput_delta\": {}, \"trees_kept\": {}, \
             \"trees_added\": {}, \"trees_dropped\": {}}}",
            json_f64(t.drain_time),
            json_f64(t.first_delivery_latency),
            json_f64(t.switch_time),
            json_f64(t.multicasts_lost),
            json_f64(t.throughput_delta),
            t.trees_kept,
            t.trees_added,
            t.trees_dropped,
        )),
    }
}

fn push_round_json(out: &mut String, round: Option<&FaultsTransition>) {
    match round {
        None => out.push_str("null"),
        Some(r) => {
            out.push_str(&format!(
                "{{\"event\": \"{}\", \"robust_throughput\": {}, \"path_disjointness\": {}, \
                 \"transition\": ",
                r.event,
                json_f64(r.robust_throughput),
                r.path_disjointness,
            ));
            push_transition_json(out, r.transition.as_ref());
            out.push('}');
        }
    }
}

/// Emits a frontier-cell array with its items indented by `pad`.
fn push_frontier_json(out: &mut String, cells: &[FrontierCell], pad: &str) {
    out.push_str("[\n");
    for (ci, cell) in cells.iter().enumerate() {
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!("{pad}  \"f\": {},\n", cell.f));
        out.push_str(&format!("{pad}  \"trees\": {},\n", cell.trees));
        out.push_str(&format!(
            "{pad}  \"achieved_disjointness\": {},\n",
            cell.achieved_disjointness
        ));
        out.push_str(&format!(
            "{pad}  \"path_disjointness\": {},\n",
            cell.path_disjointness
        ));
        out.push_str(&format!("{pad}  \"period\": {},\n", json_f64(cell.period)));
        out.push_str(&format!(
            "{pad}  \"robust_throughput\": {},\n",
            json_f64(cell.robust_throughput)
        ));
        out.push_str(&format!(
            "{pad}  \"baseline_throughput\": {},\n",
            json_f64(cell.baseline_throughput)
        ));
        out.push_str(&format!(
            "{pad}  \"throughput_sacrifice\": {},\n",
            json_f64(cell.throughput_sacrifice)
        ));
        out.push_str(&format!(
            "{pad}  \"survives_single_edge_loss\": {},\n",
            cell.survives_single_edge_loss
        ));
        out.push_str(&format!(
            "{pad}  \"fill_latency\": {},\n",
            json_f64(cell.fill_latency)
        ));
        out.push_str(&format!("{pad}  \"solve_ms\": {},\n", cell.solve_ms));
        out.push_str(&format!(
            "{pad}  \"lp_solves\": {}, \"warm_hits\": {}, \"warm_misses\": {},\n",
            cell.lp_solves, cell.warm_hits, cell.warm_misses
        ));
        out.push_str(&format!("{pad}  \"losses\": ["));
        let points: Vec<String> = cell
            .losses
            .iter()
            .map(|p| {
                format!(
                    "{{\"loss\": {}, \"delivery_ratio\": {}, \"goodput\": {}, \
                     \"expected_floor\": {}, \"meets_expected\": {}}}",
                    json_f64(p.loss),
                    json_f64(p.delivery_ratio),
                    json_f64(p.goodput),
                    json_f64(p.expected_floor),
                    p.meets_expected,
                )
            })
            .collect();
        out.push_str(&points.join(", "));
        out.push_str("]\n");
        let comma = if ci + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!("{pad}}}{comma}\n"));
    }
    // Closing bracket at one level out from the items.
    out.push_str(&pad[..pad.len().saturating_sub(2)]);
    out.push(']');
}

/// The faults batch as a pretty-printed schema-v6 JSON document.
///
/// Every `"solve_ms"` field (the meta total and each frontier cell's wall
/// time) sits on its own line, so the same `grep -v '"solve_ms"'` filter
/// CI applies to the sweep and drift artifacts makes two faults runs
/// byte-comparable.
pub fn faults_to_json(result: &FaultsResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{FAULTS_JSON_SCHEMA}\",\n"));
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"solve_ms\": {},\n", result.meta.solve_ms));
    out.push_str(&format!("    \"lp_solves\": {},\n", result.meta.lp_solves));
    out.push_str(&format!("    \"warm_hits\": {},\n", result.meta.warm_hits));
    out.push_str(&format!(
        "    \"warm_misses\": {},\n",
        result.meta.warm_misses
    ));
    out.push_str(&format!(
        "    \"warm_hit_rate\": {},\n",
        json_f64(result.meta.warm_hit_rate())
    ));
    out.push_str(&format!("    \"scenarios\": {},\n", result.meta.scenarios));
    out.push_str(&format!(
        "    \"kind\": \"{}\",\n",
        kind_key(result.config.kind)
    ));
    let floats = |v: &[f64]| {
        v.iter()
            .map(|&x| json_f64(x))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!(
        "    \"loss_rates\": [{}],\n",
        floats(&result.config.loss_rates)
    ));
    out.push_str(&format!(
        "    \"redundancy\": [{}]\n",
        result
            .config
            .redundancy
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  },\n");
    out.push_str("  \"worked_example\": {\n");
    out.push_str(&format!(
        "    \"nodes\": {},\n",
        result.worked_example.nodes
    ));
    out.push_str(&format!(
        "    \"targets\": {},\n",
        result.worked_example.targets
    ));
    out.push_str(&format!(
        "    \"capability\": {},\n",
        result.worked_example.capability
    ));
    out.push_str("    \"frontier\": ");
    push_frontier_json(&mut out, &result.worked_example.frontier, "      ");
    out.push_str("\n  },\n");
    out.push_str("  \"scenarios\": [\n");
    for (si, scenario) in result.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"class\": \"{}\",\n",
            class_key(scenario.class)
        ));
        out.push_str(&format!("      \"seed\": {},\n", scenario.seed));
        out.push_str(&format!("      \"platform\": {},\n", scenario.platform));
        out.push_str(&format!("      \"nodes\": {},\n", scenario.nodes));
        out.push_str(&format!("      \"targets\": {},\n", scenario.targets));
        out.push_str(&format!("      \"capability\": {},\n", scenario.capability));
        out.push_str("      \"frontier\": ");
        push_frontier_json(&mut out, &scenario.frontier, "        ");
        out.push_str(",\n");
        out.push_str("      \"crash\": ");
        push_round_json(&mut out, scenario.crash.as_ref());
        out.push_str(",\n      \"recovery\": ");
        push_round_json(&mut out, scenario.recovery.as_ref());
        out.push('\n');
        let comma = if si + 1 < result.scenarios.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FaultsConfig {
        FaultsConfig {
            classes: vec![PlatformClass::Small],
            seeds: vec![42],
            platforms: 1,
            loss_rates: vec![0.0, 0.05],
            redundancy: vec![1, 2],
            horizon: 120,
            warmup: 12,
            ..FaultsConfig::smoke()
        }
    }

    #[test]
    fn worked_example_pins_full_redundancy() {
        let result = run_faults(&tiny_config());
        let we = &result.worked_example;
        assert_eq!(
            we.capability, 2,
            "the worked example dual-homes every target"
        );
        let f2 = we
            .frontier
            .iter()
            .find(|c| c.f == 2)
            .expect("an f = 2 cell");
        // The hard guarantee of the tentpole: two edge-disjoint delivery
        // paths per target, verified by max-flow on the union and by the
        // single-edge total-loss replay.
        assert!(f2.achieved_disjointness >= 2);
        assert!(f2.path_disjointness >= 2);
        assert!(f2.survives_single_edge_loss);
        for point in &f2.losses {
            assert!(point.meets_expected, "loss={}", point.loss);
            if point.loss == 0.0 {
                assert_eq!(point.delivery_ratio, 1.0);
            } else {
                // Redundancy buys delivery: the floor of the f = 2 cell
                // beats a single 2-hop chain's survival at the same loss.
                assert!(point.delivery_ratio > 1.0 - 2.0 * point.loss);
            }
        }
        let f1 = we
            .frontier
            .iter()
            .find(|c| c.f == 1)
            .expect("an f = 1 cell");
        assert!(!f1.survives_single_edge_loss);
        assert!(f2.robust_throughput <= f1.robust_throughput + 1e-9);
    }

    #[test]
    fn faults_frontier_holds_invariants() {
        let result = run_faults(&tiny_config());
        assert_eq!(result.scenarios.len(), 1);
        let scenario = &result.scenarios[0];
        assert_eq!(scenario.frontier.len(), 2);
        assert!(scenario.capability >= 1);
        let mut previous_throughput = f64::INFINITY;
        for cell in &scenario.frontier {
            // Redundancy is never free: throughput is non-increasing in f
            // and never beats the non-redundant packing baseline.
            assert!(
                cell.robust_throughput <= previous_throughput + 1e-9,
                "f={} throughput {} above previous {}",
                cell.f,
                cell.robust_throughput,
                previous_throughput
            );
            previous_throughput = cell.robust_throughput;
            assert!(cell.throughput_sacrifice >= -1e-6);
            assert!(cell.period.is_finite() && cell.period > 0.0);
            assert!(cell.path_disjointness >= 1);
            assert!(cell.achieved_disjointness >= cell.path_disjointness);
            // The f ≥ 2 guarantee: disjoint per-tree paths survive the
            // total loss of any single schedule edge.
            if cell.path_disjointness >= 2 {
                assert!(
                    cell.survives_single_edge_loss,
                    "f={} not survivable",
                    cell.f
                );
            }
            for point in &cell.losses {
                assert!(point.meets_expected, "f={} loss={}", cell.f, point.loss);
                if point.loss == 0.0 {
                    assert_eq!(point.delivery_ratio, 1.0);
                    assert!(point.goodput > 0.0);
                }
            }
        }
        // The crash round fired and measured a switchover against the last
        // frontier realization.
        let crash = scenario.crash.as_ref().expect("a disableable node");
        assert!(crash.transition.is_some());
        let recovery = scenario.recovery.as_ref().expect("recovery round");
        assert!(recovery.transition.is_some());
        assert!(recovery.robust_throughput.is_finite());
    }

    #[test]
    fn faults_json_is_deterministic_modulo_wall_time() {
        let config = tiny_config();
        let a = run_faults(&config);
        let b = run_faults(&config);
        let filter = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"solve_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(filter(&faults_to_json(&a)), filter(&faults_to_json(&b)));
        assert!(faults_to_json(&a).contains(FAULTS_JSON_SCHEMA));
    }
}
