//! The Figure 11 sweep: run every heuristic over random Tiers-like platforms
//! and increasing densities of targets, and aggregate the period ratios.
//!
//! Two entry points:
//!
//! * [`run_sweep`] — one `(class, seed)` sweep over a density grid, the unit
//!   of Figure 11's four sub-figures,
//! * [`run_batch`] — the full Figure 11 reproduction: every platform class
//!   crossed with a seed grid, with all `(class, seed, platform)` work items
//!   flattened into a single rayon-parallel pool so the LP-heavy reports
//!   saturate every core regardless of how the grid is shaped.
//!
//! **Warm starts**: within one `(class, seed, platform)` work item the
//! density grid is swept *sequentially* under a [`pm_lp::WarmStartCache`]
//! scope — consecutive densities re-solve structurally identical LPs (the
//! broadcast curve, the greedy heuristics' iterated broadcast LPs, …), so
//! most solves skip phase 1 by starting from the previous optimal basis.
//! The cache is per work item, so parallel scheduling cannot leak state
//! between items.
//!
//! Determinism: instance seeds are derived from the configuration only,
//! warm-start caches evolve deterministically inside their work item, and
//! rayon's ordered collect keeps aggregation order independent of thread
//! scheduling, so two runs of the same configuration produce bitwise
//! identical results (the property the JSON/CSV baselines in CI rely on).

use pm_core::report::{CollectOptions, HeuristicKind, KindLpStats, MulticastReport};
use pm_lp::WarmStartCache;
use pm_platform::topology::{GeneratedTopology, PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration of a sweep (one of the four sub-figures of Figure 11).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The platform class ("small" or "big").
    pub class: PlatformClass,
    /// Use the paper-scale platform sizes (≈30-node small, ≈65-node big)
    /// instead of the reduced sizes. Affordable since the heuristics moved
    /// to the masked formulations (`pm_core::masked`): pass `--paper-scale`
    /// to the `fig11` binary; CI runs `--paper-scale --smoke`.
    pub paper_scale: bool,
    /// Number of random platforms per point (the paper uses 10).
    pub platforms: usize,
    /// Target densities to sweep (fraction of LAN nodes that are targets).
    pub densities: Vec<f64>,
    /// Base random seed.
    pub seed: u64,
    /// The heuristics / reference curves to run.
    pub kinds: Vec<HeuristicKind>,
    /// Realize every heuristic's winning solution as a weighted tree set,
    /// color it into a periodic schedule and verify it in the simulator
    /// (`fig11 --realize`): fills the per-point realization aggregates.
    pub realize: bool,
}

impl SweepConfig {
    /// A quick configuration suitable for CI and for the default
    /// `cargo run -p pm-bench --bin fig11` invocation.
    pub fn quick(class: PlatformClass) -> Self {
        SweepConfig {
            class,
            paper_scale: false,
            platforms: 2,
            densities: vec![0.25, 0.5, 0.75, 1.0],
            seed: 42,
            kinds: HeuristicKind::ALL.to_vec(),
            realize: false,
        }
    }
}

/// Per-kind realization aggregates of one sweep point (collected under
/// `fig11 --realize`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PointRealization {
    /// Instances whose solution was realized (≤ the point's instances).
    pub realized: usize,
    /// Mean simulated throughput of the realized schedules.
    pub mean_simulated_throughput: f64,
    /// Mean `|simulated_period − lp_period| / lp_period`.
    pub mean_realization_gap: f64,
    /// Largest realization gap over the realized instances.
    pub max_realization_gap: f64,
    /// Total one-port violations the simulator detected (0 for valid
    /// schedules).
    pub one_port_violations: u64,
}

/// Aggregated measurements for one `(density)` point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Target density of the point.
    pub density: f64,
    /// Mean period per heuristic kind (same order as the config's `kinds`),
    /// averaged over the platforms where the heuristic produced a finite
    /// period.
    pub mean_period: Vec<(HeuristicKind, f64)>,
    /// Per-kind realization aggregates, same order as `mean_period`; empty
    /// unless the sweep ran with [`SweepConfig::realize`].
    pub realization: Vec<(HeuristicKind, PointRealization)>,
    /// Number of instances aggregated.
    pub instances: usize,
}

impl SweepPoint {
    /// Mean period of a heuristic kind at this point.
    pub fn period(&self, kind: HeuristicKind) -> Option<f64> {
        self.mean_period
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, p)| p)
    }

    /// Realization aggregates of a heuristic kind at this point (only when
    /// the sweep realized solutions).
    pub fn realization(&self, kind: HeuristicKind) -> Option<PointRealization> {
        self.realization
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, r)| r)
    }

    /// Ratio of the mean period of `kind` to the mean period of `reference`
    /// (the quantity plotted in Figure 11).
    pub fn ratio(&self, kind: HeuristicKind, reference: HeuristicKind) -> Option<f64> {
        match (self.period(kind), self.period(reference)) {
            (Some(p), Some(r)) if r > 0.0 => Some(p / r),
            _ => None,
        }
    }
}

/// The result of a full sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The configuration that produced the result.
    pub config: SweepConfig,
    /// One aggregated point per density.
    pub points: Vec<SweepPoint>,
}

/// Generates the per-platform topologies of a sweep. They are generated up
/// front so that every density sees the same set of platforms (as in the
/// paper: 10 platforms per class, reused for every target density).
fn generate_topologies(config: &SweepConfig) -> Vec<GeneratedTopology> {
    (0..config.platforms)
        .map(|i| {
            let mut generator = if config.paper_scale {
                TiersLikeGenerator::paper_scale(config.class, config.seed + i as u64)
            } else {
                TiersLikeGenerator::reduced_scale(config.class, config.seed + i as u64)
            };
            generator.generate()
        })
        .collect()
}

/// The deterministic instance seed of work item `(density index, platform
/// index)` under a sweep base seed.
fn instance_seed(base: u64, di: usize, pi: usize) -> u64 {
    base ^ (di as u64).wrapping_mul(0x9e37_79b9) ^ ((pi as u64) << 32)
}

/// Runs one work item: sample the instance and collect every heuristic.
fn collect_report(
    topology: &GeneratedTopology,
    config: &SweepConfig,
    di: usize,
    pi: usize,
) -> Option<MulticastReport> {
    let density = config.densities[di];
    let mut rng = StdRng::seed_from_u64(instance_seed(config.seed, di, pi));
    let instance = topology.sample_instance(density, &mut rng);
    MulticastReport::collect_with(
        &instance,
        &config.kinds,
        CollectOptions {
            realize: config.realize,
        },
    )
    .ok()
}

/// Aggregates the per-item reports of one sweep into per-density points.
fn aggregate(config: &SweepConfig, reports: &[(usize, Option<MulticastReport>)]) -> SweepResult {
    let mut points = Vec::with_capacity(config.densities.len());
    for (di, &density) in config.densities.iter().enumerate() {
        let at_point: Vec<&MulticastReport> = reports
            .iter()
            .filter_map(|(d, r)| if *d == di { r.as_ref() } else { None })
            .collect();
        let mut mean_period = Vec::with_capacity(config.kinds.len());
        let mut realization = Vec::new();
        for &kind in &config.kinds {
            let values: Vec<f64> = at_point
                .iter()
                .filter_map(|r| r.period(kind))
                .filter(|p| p.is_finite())
                .collect();
            let mean = if values.is_empty() {
                f64::INFINITY
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            mean_period.push((kind, mean));
            if config.realize {
                let realized: Vec<_> = at_point
                    .iter()
                    .filter_map(|r| r.realization_for(kind))
                    .collect();
                let n = realized.len();
                let agg = if n == 0 {
                    PointRealization {
                        realized: 0,
                        mean_simulated_throughput: f64::INFINITY,
                        mean_realization_gap: f64::INFINITY,
                        max_realization_gap: f64::INFINITY,
                        one_port_violations: 0,
                    }
                } else {
                    PointRealization {
                        realized: n,
                        mean_simulated_throughput: realized
                            .iter()
                            .map(|r| r.simulated_throughput)
                            .sum::<f64>()
                            / n as f64,
                        mean_realization_gap: realized
                            .iter()
                            .map(|r| r.realization_gap)
                            .sum::<f64>()
                            / n as f64,
                        max_realization_gap: realized
                            .iter()
                            .map(|r| r.realization_gap)
                            .fold(0.0, f64::max),
                        one_port_violations: realized.iter().map(|r| r.one_port_violations).sum(),
                    }
                };
                realization.push((kind, agg));
            }
        }
        points.push(SweepPoint {
            density,
            mean_period,
            realization,
            instances: at_point.len(),
        });
    }
    SweepResult {
        config: config.clone(),
        points,
    }
}

/// Batch-level realization accounting of one heuristic kind (stderr summary
/// and the JSON meta block of `fig11 --realize`).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct KindRealizationAgg {
    /// Instances whose solution was realized and simulated.
    pub realized: u64,
    /// Instances that produced a finite period but could not be realized.
    pub failed: u64,
    /// Total one-port violations across the realized schedules.
    pub one_port_violations: u64,
    /// Largest realization gap seen.
    pub max_gap: f64,
    /// Sum of realization gaps (mean = `sum_gap / realized`).
    pub sum_gap: f64,
}

impl KindRealizationAgg {
    /// Accumulates another aggregate.
    pub fn add(&mut self, other: KindRealizationAgg) {
        self.realized += other.realized;
        self.failed += other.failed;
        self.one_port_violations += other.one_port_violations;
        self.max_gap = self.max_gap.max(other.max_gap);
        self.sum_gap += other.sum_gap;
    }

    /// Mean realization gap over the realized instances.
    pub fn mean_gap(&self) -> f64 {
        if self.realized > 0 {
            self.sum_gap / self.realized as f64
        } else {
            0.0
        }
    }
}

/// Per-work-item measurements folded into [`BatchMeta`].
#[derive(Debug, Clone, Default)]
struct ItemStats {
    solve_us: u128,
    lp_solves: u64,
    warm_hits: u64,
    warm_misses: u64,
    /// Per-heuristic accounting, in [`HeuristicKind::ALL`] order (absent
    /// kinds omitted).
    per_kind: Vec<(HeuristicKind, KindLpStats)>,
    /// Per-heuristic realization accounting (empty without `--realize`).
    per_kind_realization: Vec<(HeuristicKind, KindRealizationAgg)>,
}

/// Accumulates `stats` into the `kind` entry of a per-heuristic aggregate
/// list (appending the kind on first sight) — the one merge rule shared by
/// the item-level and batch-level aggregations.
fn merge_kind(
    into: &mut Vec<(HeuristicKind, KindLpStats)>,
    kind: HeuristicKind,
    stats: KindLpStats,
) {
    match into.iter_mut().find(|(k, _)| *k == kind) {
        Some((_, agg)) => agg.add(stats),
        None => into.push((kind, stats)),
    }
}

impl ItemStats {
    fn add_kind(&mut self, kind: HeuristicKind, stats: KindLpStats) {
        self.lp_solves += stats.lp_solves;
        self.warm_hits += stats.warm_hits;
        self.warm_misses += stats.warm_misses;
        merge_kind(&mut self.per_kind, kind, stats);
    }

    fn add_kind_realization(&mut self, kind: HeuristicKind, agg: KindRealizationAgg) {
        match self
            .per_kind_realization
            .iter_mut()
            .find(|(k, _)| *k == kind)
        {
            Some((_, existing)) => existing.add(agg),
            None => self.per_kind_realization.push((kind, agg)),
        }
    }
}

/// Runs the density grid of one platform sequentially under a shared
/// warm-start cache (see the module docs) and returns the per-density
/// reports plus the item's LP statistics.
///
/// The totals are the per-heuristic sums reported by the collected
/// [`MulticastReport`]s: the masked greedy heuristics account their
/// template solves themselves, and the baseline curves' plain
/// `LpProblem::solve` calls are attributed from the cache scope's deltas —
/// every counter is deterministic for a given configuration.
fn collect_platform_reports(
    topology: &GeneratedTopology,
    config: &SweepConfig,
    pi: usize,
    progress_label: Option<&str>,
) -> (Vec<(usize, Option<MulticastReport>)>, ItemStats) {
    let mut cache = WarmStartCache::new();
    let start = Instant::now();
    let reports: Vec<(usize, Option<MulticastReport>)> = cache.scope(|| {
        (0..config.densities.len())
            .map(|di| {
                let density_start = Instant::now();
                let report = collect_report(topology, config, di, pi);
                if let Some(label) = progress_label {
                    eprintln!(
                        "fig11: {label} density {}/{} ({}) done in {:.1}s",
                        di + 1,
                        config.densities.len(),
                        config.densities[di],
                        density_start.elapsed().as_secs_f64(),
                    );
                }
                (di, report)
            })
            .collect()
    });
    let mut stats = ItemStats {
        solve_us: start.elapsed().as_micros(),
        ..ItemStats::default()
    };
    for (_, report) in reports.iter() {
        if let Some(report) = report {
            for &(kind, kind_stats) in &report.lp_stats {
                stats.add_kind(kind, kind_stats);
            }
            for &(kind, real) in &report.realizations {
                let agg = match real {
                    Some(r) => KindRealizationAgg {
                        realized: 1,
                        failed: 0,
                        one_port_violations: r.one_port_violations,
                        max_gap: r.realization_gap,
                        sum_gap: r.realization_gap,
                    },
                    // A finite period that did not realize is a failure; an
                    // infinite one had nothing to realize.
                    None => KindRealizationAgg {
                        failed: report.period(kind).is_some_and(f64::is_finite) as u64,
                        ..KindRealizationAgg::default()
                    },
                };
                stats.add_kind_realization(kind, agg);
            }
        }
    }
    (reports, stats)
}

/// Runs the sweep, distributing the per-platform density grids over the
/// rayon pool.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let topologies = generate_topologies(config);

    let per_platform: Vec<Vec<(usize, Option<MulticastReport>)>> = (0..topologies.len())
        .into_par_iter()
        .map(|pi| collect_platform_reports(&topologies[pi], config, pi, None).0)
        .collect();
    let reports: Vec<(usize, Option<MulticastReport>)> =
        per_platform.into_iter().flatten().collect();

    aggregate(config, &reports)
}

/// Configuration of the full Figure 11 batch: platform classes crossed with
/// a seed grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Platform classes to sweep (Figure 11 uses both).
    pub classes: Vec<PlatformClass>,
    /// Base seeds; each `(class, seed)` pair is one full sweep, so the seed
    /// grid controls how many independent platform draws enter the batch.
    pub seeds: Vec<u64>,
    /// Paper-scale platform sizes (see [`SweepConfig::paper_scale`]).
    pub paper_scale: bool,
    /// Random platforms per sweep.
    pub platforms: usize,
    /// Target densities.
    pub densities: Vec<f64>,
    /// Heuristics / reference curves to run.
    pub kinds: Vec<HeuristicKind>,
    /// Override of `kinds` for [`PlatformClass::Big`] sweeps. The iterated
    /// LP heuristics (Reduced Broadcast, Augmented Multicast, Augmented
    /// Sources) solve dozens of broadcast LPs per instance — seconds per
    /// big-class instance on the masked formulations (minutes before them)
    /// — so the default batch still restricts big platforms to the cheap
    /// curves; `None` applies `kinds` everywhere (`fig11 --full`).
    pub kinds_big: Option<Vec<HeuristicKind>>,
    /// Realize and simulator-verify every heuristic solution
    /// (`fig11 --realize`, see [`SweepConfig::realize`]).
    pub realize: bool,
    /// Print per-work-item progress to stderr as items finish (paper-scale
    /// `--full` sweeps run for a long time and should not go silent).
    /// Progress goes to stderr only, so the JSON/CSV artifacts stay
    /// byte-identical.
    pub progress: bool,
}

/// The cheap curves: references + the combinatorial MCPH heuristic (no
/// iterated LP solves).
pub const BASIC_KINDS: [HeuristicKind; 4] = [
    HeuristicKind::Scatter,
    HeuristicKind::LowerBound,
    HeuristicKind::Broadcast,
    HeuristicKind::Mcph,
];

impl BatchConfig {
    /// The default `fig11` binary configuration: both classes, a two-seed
    /// grid, quick sizes. Small platforms run the full Figure 11 comparison
    /// (lower bound vs. Reduced Broadcast / Augmented Multicast / Augmented
    /// Sources / MCPH); big platforms run the cheap curves (see
    /// [`BatchConfig::kinds_big`]).
    pub fn quick() -> Self {
        BatchConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42, 43],
            paper_scale: false,
            platforms: 2,
            densities: vec![0.25, 0.5, 0.75, 1.0],
            kinds: HeuristicKind::ALL.to_vec(),
            kinds_big: Some(BASIC_KINDS.to_vec()),
            realize: false,
            progress: false,
        }
    }

    /// A minimal batch for the CI bench-smoke job: one tiny sweep per class
    /// restricted to the cheap reference curves + MCPH.
    pub fn ci_smoke() -> Self {
        BatchConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42],
            paper_scale: false,
            platforms: 1,
            densities: vec![0.5],
            kinds: vec![
                HeuristicKind::Scatter,
                HeuristicKind::LowerBound,
                HeuristicKind::Mcph,
            ],
            kinds_big: None,
            realize: false,
            progress: false,
        }
    }

    /// The curves run on a given platform class.
    pub fn kinds_for(&self, class: PlatformClass) -> Vec<HeuristicKind> {
        match (class, &self.kinds_big) {
            (PlatformClass::Big, Some(kinds)) => kinds.clone(),
            _ => self.kinds.clone(),
        }
    }

    /// The [`SweepConfig`] of one `(class, seed)` cell of the batch.
    pub fn sweep_config(&self, class: PlatformClass, seed: u64) -> SweepConfig {
        SweepConfig {
            class,
            paper_scale: self.paper_scale,
            platforms: self.platforms,
            densities: self.densities.clone(),
            seed,
            kinds: self.kinds_for(class),
            realize: self.realize,
        }
    }
}

/// Aggregate LP accounting of one [`run_batch`] call, emitted into the
/// JSON `meta` block (schema `pm-bench/fig11-sweep/v2`).
///
/// The counters (`lp_solves`, `warm_hits`, `warm_misses`) are deterministic
/// for a given configuration; `solve_ms` is a wall-clock measurement and
/// varies from run to run, which is why CI filters it before byte-comparing
/// artifacts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BatchMeta {
    /// Total wall-clock milliseconds spent inside the work items — the
    /// LP-dominated end-to-end cost of the sweep, including the (small)
    /// non-LP share: instance sampling and the combinatorial heuristics.
    /// Summed over items, so it exceeds the elapsed time on multi-core
    /// runs.
    pub solve_ms: u64,
    /// Linear programs solved across the batch (any engine: dense solves
    /// under the scope count as cold).
    pub lp_solves: u64,
    /// Solves warm-started from a previous basis (masked-template hints
    /// and ambient cache hits alike; phase 1 skipped or repaired in a few
    /// pivots).
    pub warm_hits: u64,
    /// Solves that started cold.
    pub warm_misses: u64,
    /// Per-heuristic accounting, in [`HeuristicKind::ALL`] order (kinds
    /// that never ran are omitted).
    pub per_kind: Vec<(HeuristicKind, KindLpStats)>,
    /// Per-heuristic realization accounting, in [`HeuristicKind::ALL`]
    /// order; empty unless the batch ran with [`BatchConfig::realize`].
    pub realization: Vec<(HeuristicKind, KindRealizationAgg)>,
}

impl BatchMeta {
    fn fold(&mut self, item: &ItemStats) {
        self.solve_ms += (item.solve_us / 1000) as u64;
        self.lp_solves += item.lp_solves;
        self.warm_hits += item.warm_hits;
        self.warm_misses += item.warm_misses;
        for &(kind, stats) in &item.per_kind {
            merge_kind(&mut self.per_kind, kind, stats);
        }
        for &(kind, agg) in &item.per_kind_realization {
            match self.realization.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, existing)) => existing.add(agg),
                None => self.realization.push((kind, agg)),
            }
        }
    }

    /// Sorts the per-kind aggregates into [`HeuristicKind::ALL`] order so
    /// emission order never depends on item completion order.
    fn normalize(&mut self) {
        let all_order = |kind: HeuristicKind| {
            HeuristicKind::ALL
                .iter()
                .position(|&k| k == kind)
                .unwrap_or(usize::MAX)
        };
        self.per_kind.sort_by_key(|&(kind, _)| all_order(kind));
        self.realization.sort_by_key(|&(kind, _)| all_order(kind));
    }
}

/// The result of a [`run_batch`] call: one [`SweepResult`] per
/// `(class, seed)` pair, in configuration order, plus the LP accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchResult {
    /// One sweep per `(class, seed)`, classes outermost.
    pub sweeps: Vec<SweepResult>,
    /// Aggregate LP statistics of the run.
    pub meta: BatchMeta,
}

/// Runs the full batch with every `(class, seed, platform)` work item
/// flattened into a single rayon pool; each item sweeps its density grid
/// sequentially under a warm-start cache (see the module docs).
///
/// Flattening matters: a nested "parallel over sweeps, serial within" split
/// would leave cores idle at the tail of each sweep, while the flat pool
/// keeps the expensive LP-based heuristics busy until the very last item.
pub fn run_batch(config: &BatchConfig) -> BatchResult {
    run_batch_streamed(config, &[])
}

/// [`run_batch`] with streaming per-item sinks: as each work item finishes,
/// its per-`(instance, kind)` rows are rendered and handed to every sink
/// ([`crate::emit::ItemSink`]), which flushes them to disk in item order —
/// paper-scale `--realize --full` sweeps keep their full per-instance
/// detail on disk instead of in memory, and the streamed files stay
/// byte-identical across runs and thread counts.
pub fn run_batch_streamed(config: &BatchConfig, sinks: &[&crate::emit::ItemSink]) -> BatchResult {
    // One SweepConfig + topology set per (class, seed) cell.
    let cells: Vec<(SweepConfig, Vec<GeneratedTopology>)> = config
        .classes
        .iter()
        .flat_map(|&class| config.seeds.iter().map(move |&seed| (class, seed)))
        .map(|(class, seed)| {
            let sweep_config = config.sweep_config(class, seed);
            let topologies = generate_topologies(&sweep_config);
            (sweep_config, topologies)
        })
        .collect();

    // Flattened work items: (item index, cell, platform).
    let mut work: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, (_, topologies)) in cells.iter().enumerate() {
        for pi in 0..topologies.len() {
            work.push((work.len(), ci, pi));
        }
    }

    let total_items = work.len();
    let done = AtomicUsize::new(0);
    type ItemReports = Vec<(usize, Option<MulticastReport>)>;
    let items: Vec<(usize, ItemReports, ItemStats)> = work
        .into_par_iter()
        .map(|(item, ci, pi)| {
            let (sweep_config, topologies) = &cells[ci];
            let label = config.progress.then(|| {
                format!(
                    "class={:?} seed={} platform={pi}",
                    sweep_config.class, sweep_config.seed
                )
            });
            let (reports, stats) =
                collect_platform_reports(&topologies[pi], sweep_config, pi, label.as_deref());
            for sink in sinks {
                let mut chunk = String::new();
                crate::emit::item_rows(sink.format(), sweep_config, pi, &reports, &mut chunk);
                sink.submit(item, chunk)
                    .unwrap_or_else(|e| panic!("writing streamed item rows: {e}"));
            }
            if config.progress {
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "fig11: [{finished}/{total_items}] class={:?} seed={} platform={pi} \
                     ({} densities, {} LP solves, {} warm hits, {:.1}s)",
                    sweep_config.class,
                    sweep_config.seed,
                    sweep_config.densities.len(),
                    stats.lp_solves,
                    stats.warm_hits,
                    stats.solve_us as f64 / 1e6,
                );
            }
            (ci, reports, stats)
        })
        .collect();

    let mut meta = BatchMeta::default();
    for (_, _, stats) in &items {
        meta.fold(stats);
    }
    meta.normalize();

    let sweeps = cells
        .iter()
        .enumerate()
        .map(|(ci, (sweep_config, _))| {
            let cell_reports: Vec<(usize, Option<MulticastReport>)> = items
                .iter()
                .filter(|(c, _, _)| *c == ci)
                .flat_map(|(_, reports, _)| reports.iter().cloned())
                .collect();
            aggregate(sweep_config, &cell_reports)
        })
        .collect();

    BatchResult { sweeps, meta }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_ordered_curves() {
        let config = SweepConfig {
            class: PlatformClass::Small,
            paper_scale: false,
            platforms: 1,
            densities: vec![0.5],
            seed: 7,
            kinds: vec![
                HeuristicKind::Scatter,
                HeuristicKind::LowerBound,
                HeuristicKind::Mcph,
            ],
            realize: false,
        };
        let result = run_sweep(&config);
        assert_eq!(result.points.len(), 1);
        let point = &result.points[0];
        assert_eq!(point.instances, 1);
        let scatter = point.period(HeuristicKind::Scatter).unwrap();
        let lb = point.period(HeuristicKind::LowerBound).unwrap();
        let mcph = point.period(HeuristicKind::Mcph).unwrap();
        assert!(lb <= scatter + 1e-6);
        assert!(mcph >= lb - 1e-6);
        // Ratios normalise as in Figure 11.
        assert!(
            point
                .ratio(HeuristicKind::LowerBound, HeuristicKind::Scatter)
                .unwrap()
                <= 1.0 + 1e-9
        );
        assert!(
            point
                .ratio(HeuristicKind::Mcph, HeuristicKind::LowerBound)
                .unwrap()
                >= 1.0 - 1e-9
        );
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let config = SweepConfig {
            class: PlatformClass::Small,
            paper_scale: false,
            platforms: 2,
            densities: vec![0.25, 0.75],
            seed: 11,
            kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
            realize: false,
        };
        let a = run_sweep(&config);
        let b = run_sweep(&config);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.instances, pb.instances);
            for ((ka, va), (kb, vb)) in pa.mean_period.iter().zip(&pb.mean_period) {
                assert_eq!(ka, kb);
                // Bitwise equality: same work items, same order, same FP ops.
                assert_eq!(va.to_bits(), vb.to_bits(), "{ka:?}");
            }
        }
    }

    #[test]
    fn realized_sweep_aggregates_simulated_throughput() {
        let config = SweepConfig {
            class: PlatformClass::Small,
            paper_scale: false,
            platforms: 1,
            densities: vec![0.5],
            seed: 7,
            kinds: vec![
                HeuristicKind::Scatter,
                HeuristicKind::Mcph,
                HeuristicKind::ReducedBroadcast,
            ],
            realize: true,
        };
        let result = run_sweep(&config);
        let point = &result.points[0];
        assert_eq!(point.realization.len(), 3);
        for &kind in &config.kinds {
            let real = point.realization(kind).unwrap();
            assert_eq!(real.realized, 1, "{kind:?}");
            assert_eq!(real.one_port_violations, 0, "{kind:?}");
            // The certified schedule never overshoots the claimed period and
            // the gap is what separates it from the claim.
            let period = point.period(kind).unwrap();
            assert!(
                real.mean_simulated_throughput <= 1.0 / period + 1e-6,
                "{kind:?}"
            );
            assert!(real.max_realization_gap >= -1e-12, "{kind:?}");
        }
        // Determinism, bit for bit.
        let again = run_sweep(&config);
        for (a, b) in result.points.iter().zip(&again.points) {
            for ((ka, ra), (kb, rb)) in a.realization.iter().zip(&b.realization) {
                assert_eq!(ka, kb);
                assert_eq!(
                    ra.mean_simulated_throughput.to_bits(),
                    rb.mean_simulated_throughput.to_bits()
                );
                assert_eq!(
                    ra.mean_realization_gap.to_bits(),
                    rb.mean_realization_gap.to_bits()
                );
            }
        }
    }

    #[test]
    fn batch_covers_every_class_seed_cell() {
        let config = BatchConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![3, 5],
            paper_scale: false,
            platforms: 1,
            densities: vec![0.5],
            kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
            kinds_big: None,
            realize: false,
            progress: false,
        };
        let result = run_batch(&config);
        assert_eq!(result.sweeps.len(), 4);
        assert_eq!(result.sweeps[0].config.class, PlatformClass::Small);
        assert_eq!(result.sweeps[0].config.seed, 3);
        assert_eq!(result.sweeps[3].config.class, PlatformClass::Big);
        assert_eq!(result.sweeps[3].config.seed, 5);
        for sweep in &result.sweeps {
            assert_eq!(sweep.points.len(), 1);
            assert_eq!(sweep.points[0].instances, 1);
        }
    }

    #[test]
    fn batch_cell_matches_standalone_sweep() {
        let batch_config = BatchConfig {
            classes: vec![PlatformClass::Small],
            seeds: vec![9],
            paper_scale: false,
            platforms: 2,
            densities: vec![0.5, 1.0],
            kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
            kinds_big: None,
            realize: false,
            progress: false,
        };
        let batch = run_batch(&batch_config);
        let standalone = run_sweep(&batch_config.sweep_config(PlatformClass::Small, 9));
        assert_eq!(batch.sweeps.len(), 1);
        for (pb, ps) in batch.sweeps[0].points.iter().zip(&standalone.points) {
            assert_eq!(pb.instances, ps.instances);
            for ((kb, vb), (ks, vs)) in pb.mean_period.iter().zip(&ps.mean_period) {
                assert_eq!(kb, ks);
                assert_eq!(vb.to_bits(), vs.to_bits());
            }
        }
    }
}
