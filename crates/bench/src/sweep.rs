//! The Figure 11 sweep: run every heuristic over random Tiers-like platforms
//! and increasing densities of targets, and aggregate the period ratios.

use parking_lot::Mutex;
use pm_core::report::{HeuristicKind, MulticastReport};
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a sweep (one of the four sub-figures of Figure 11).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The platform class ("small" or "big").
    pub class: PlatformClass,
    /// Use the paper-scale platform sizes instead of the reduced sizes
    /// matched to the from-scratch LP solver (see EXPERIMENTS.md).
    pub paper_scale: bool,
    /// Number of random platforms per point (the paper uses 10).
    pub platforms: usize,
    /// Target densities to sweep (fraction of LAN nodes that are targets).
    pub densities: Vec<f64>,
    /// Base random seed.
    pub seed: u64,
    /// The heuristics / reference curves to run.
    pub kinds: Vec<HeuristicKind>,
}

impl SweepConfig {
    /// A quick configuration suitable for CI and for the default
    /// `cargo run -p pm-bench --bin fig11` invocation.
    pub fn quick(class: PlatformClass) -> Self {
        SweepConfig {
            class,
            paper_scale: false,
            platforms: 2,
            densities: vec![0.25, 0.5, 0.75, 1.0],
            seed: 42,
            kinds: HeuristicKind::ALL.to_vec(),
        }
    }
}

/// Aggregated measurements for one `(density)` point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Target density of the point.
    pub density: f64,
    /// Mean period per heuristic kind (same order as the config's `kinds`),
    /// averaged over the platforms where the heuristic produced a finite
    /// period.
    pub mean_period: Vec<(HeuristicKind, f64)>,
    /// Number of instances aggregated.
    pub instances: usize,
}

impl SweepPoint {
    /// Mean period of a heuristic kind at this point.
    pub fn period(&self, kind: HeuristicKind) -> Option<f64> {
        self.mean_period
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, p)| p)
    }

    /// Ratio of the mean period of `kind` to the mean period of `reference`
    /// (the quantity plotted in Figure 11).
    pub fn ratio(&self, kind: HeuristicKind, reference: HeuristicKind) -> Option<f64> {
        match (self.period(kind), self.period(reference)) {
            (Some(p), Some(r)) if r > 0.0 => Some(p / r),
            _ => None,
        }
    }
}

/// The result of a full sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The configuration that produced the result.
    pub config: SweepConfig,
    /// One aggregated point per density.
    pub points: Vec<SweepPoint>,
}

/// Runs the sweep, distributing the (platform, density) instances over
/// threads with crossbeam's scoped threads.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    // Generate the platforms up front so that every density sees the same
    // set of platforms (as in the paper: 10 platforms per class, reused for
    // every target density).
    let topologies: Vec<_> = (0..config.platforms)
        .map(|i| {
            let mut generator = if config.paper_scale {
                TiersLikeGenerator::paper_scale(config.class, config.seed + i as u64)
            } else {
                TiersLikeGenerator::reduced_scale(config.class, config.seed + i as u64)
            };
            generator.generate()
        })
        .collect();

    // Work items: one per (density, platform).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for (di, _) in config.densities.iter().enumerate() {
        for pi in 0..topologies.len() {
            work.push((di, pi));
        }
    }
    let next = Mutex::new(0usize);
    let reports: Mutex<Vec<(usize, MulticastReport)>> = Mutex::new(Vec::new());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(work.len().max(1));

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let item = {
                    let mut guard = next.lock();
                    if *guard >= work.len() {
                        None
                    } else {
                        let i = *guard;
                        *guard += 1;
                        Some(work[i])
                    }
                };
                let Some((di, pi)) = item else { break };
                let density = config.densities[di];
                // Derive a deterministic instance seed from the work item.
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (di as u64).wrapping_mul(0x9e37_79b9) ^ (pi as u64) << 32,
                );
                let instance = topologies[pi].sample_instance(density, &mut rng);
                if let Ok(report) = MulticastReport::collect(&instance, &config.kinds) {
                    reports.lock().push((di, report));
                }
            });
        }
    })
    .expect("sweep worker panicked");

    let reports = reports.into_inner();
    let mut points = Vec::with_capacity(config.densities.len());
    for (di, &density) in config.densities.iter().enumerate() {
        let at_point: Vec<&MulticastReport> = reports
            .iter()
            .filter(|(d, _)| *d == di)
            .map(|(_, r)| r)
            .collect();
        let mut mean_period = Vec::with_capacity(config.kinds.len());
        for &kind in &config.kinds {
            let values: Vec<f64> = at_point
                .iter()
                .filter_map(|r| r.period(kind))
                .filter(|p| p.is_finite())
                .collect();
            let mean = if values.is_empty() {
                f64::INFINITY
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            mean_period.push((kind, mean));
        }
        points.push(SweepPoint {
            density,
            mean_period,
            instances: at_point.len(),
        });
    }
    SweepResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_ordered_curves() {
        let config = SweepConfig {
            class: PlatformClass::Small,
            paper_scale: false,
            platforms: 1,
            densities: vec![0.5],
            seed: 7,
            kinds: vec![
                HeuristicKind::Scatter,
                HeuristicKind::LowerBound,
                HeuristicKind::Mcph,
            ],
        };
        let result = run_sweep(&config);
        assert_eq!(result.points.len(), 1);
        let point = &result.points[0];
        assert_eq!(point.instances, 1);
        let scatter = point.period(HeuristicKind::Scatter).unwrap();
        let lb = point.period(HeuristicKind::LowerBound).unwrap();
        let mcph = point.period(HeuristicKind::Mcph).unwrap();
        assert!(lb <= scatter + 1e-6);
        assert!(mcph >= lb - 1e-6);
        // Ratios normalise as in Figure 11.
        assert!(point.ratio(HeuristicKind::LowerBound, HeuristicKind::Scatter).unwrap() <= 1.0 + 1e-9);
        assert!(point.ratio(HeuristicKind::Mcph, HeuristicKind::LowerBound).unwrap() >= 1.0 - 1e-9);
    }
}
