//! The `--multi` scenario sweep: multi-commodity super-periods over the
//! commodity-count × rate-skew grid.
//!
//! Each cell samples `k` concurrent multicast demands from one Tiers-like
//! platform, solves the joint steady-state LP through
//! [`Session::solve_multi`], realizes the shared super-period schedule
//! through [`Session::re_realize_multi`], and gates on the subsystem's two
//! hard invariants: the combined schedule replays with **zero one-port
//! violations**, and **every commodity's simulated rate meets its LP rate**
//! (within `1e-6`). Each cell then applies one seeded edge-cost drift event
//! and re-solves + re-realizes, measuring the warm-start behaviour and the
//! super-period switchover [`TransitionCost`]. `k = 1` cells additionally
//! run the classic single-commodity `LOWER BOUND` pipeline on a fresh
//! session and assert the multi path reduces to it bit-for-bit.
//!
//! Determinism: commodities are sampled from the configuration seed only,
//! cells are independent and collected in configuration order — two runs
//! (at any thread count) produce byte-identical artifacts except for the
//! `"solve_ms"` wall-time lines, which CI filters exactly as it does for
//! the other fig11 artifacts.

use crate::emit::{class_key, json_f64};
use pm_core::multi::Commodity;
use pm_core::report::HeuristicKind;
use pm_core::session::{Session, TransitionCost};
use pm_platform::graph::EdgeId;
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the multi-commodity artifact (`fig11 --multi --json`). v8
/// continues the fig11 artifact lineage: it is the first schema carrying
/// per-commodity rate certificates of a shared super-period.
pub const MULTI_JSON_SCHEMA: &str = "pm-bench/fig11-multi/v8";

/// A commodity's simulated rate must reach its LP rate up to this absolute
/// slack (the schedule delivers whole messages per super-period, so the
/// comparison is exact up to float noise).
const RATE_SLACK: f64 = 1e-6;

/// Drifted edge costs stay inside this clamp (same as the `--drift` sweep).
const COST_CLAMP: (f64, f64) = (0.05, 50.0);

/// How the demand rates are distributed over the `k` commodities of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateSkew {
    /// Every commodity demands 1 message per super-unit.
    Uniform,
    /// Commodity 0 demands 4 messages per super-unit, the rest 1 — the
    /// heavy flow must not starve the light ones (and vice versa).
    FourToOne,
}

/// Stable snake_case key of a skew (artifact field values).
pub fn skew_key(skew: RateSkew) -> &'static str {
    match skew {
        RateSkew::Uniform => "uniform",
        RateSkew::FourToOne => "four_to_one",
    }
}

impl RateSkew {
    /// The demand of commodity `c` under the skew.
    fn demand(self, c: usize) -> f64 {
        match self {
            RateSkew::Uniform => 1.0,
            RateSkew::FourToOne => {
                if c == 0 {
                    4.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// Configuration of a multi-commodity batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiBenchConfig {
    /// Platform classes to sweep.
    pub classes: Vec<PlatformClass>,
    /// Base seeds; each `(class, seed)` pair contributes `platforms`
    /// platforms, each swept over the full `ks × skews` grid.
    pub seeds: Vec<u64>,
    /// Random platforms per `(class, seed)` cell.
    pub platforms: usize,
    /// Target density of each sampled commodity's target set.
    pub density: f64,
    /// Commodity counts of the grid.
    pub ks: Vec<usize>,
    /// Rate skews of the grid.
    pub skews: Vec<RateSkew>,
    /// Paper-scale platform sizes.
    pub paper_scale: bool,
    /// Print per-cell progress to stderr.
    pub progress: bool,
}

impl MultiBenchConfig {
    /// The default `fig11 --multi` configuration.
    pub fn quick() -> Self {
        MultiBenchConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42, 43],
            platforms: 1,
            density: 0.5,
            ks: vec![1, 2, 4, 8],
            skews: vec![RateSkew::Uniform, RateSkew::FourToOne],
            paper_scale: false,
            progress: false,
        }
    }

    /// The CI multi-smoke configuration: one platform, but still the full
    /// `k × skew` grid, so the rate and one-port gates cover every
    /// commodity count the acceptance criteria name.
    pub fn smoke() -> Self {
        MultiBenchConfig {
            classes: vec![PlatformClass::Small],
            seeds: vec![42],
            platforms: 1,
            density: 0.5,
            ks: vec![1, 2, 4, 8],
            skews: vec![RateSkew::Uniform, RateSkew::FourToOne],
            paper_scale: false,
            progress: false,
        }
    }
}

/// One commodity's certificate inside a cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiCommodityRecord {
    /// Commodity index within the cell.
    pub commodity: usize,
    /// Demand `d_c` (messages per super-unit).
    pub demand: f64,
    /// Targets of the commodity's multicast.
    pub targets: usize,
    /// The joint LP's steady-state rate `d_c / T*`.
    pub lp_rate: f64,
    /// The realization's certified rate `d_c · s_cert`.
    pub certified_rate: f64,
    /// The rate the commodity's tag-restricted sub-schedule actually
    /// sustains in the one-port simulator.
    pub simulated_rate: f64,
    /// `simulated_rate ≥ lp_rate − 1e-6` — the acceptance gate.
    pub rate_met: bool,
    /// Trees the commodity contributes to the shared super-period.
    pub trees: usize,
}

/// The post-drift re-solve + re-realization of a cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiDriftRecord {
    /// Stable description of the applied edge-cost event.
    pub event: String,
    /// The re-solved super-unit period `T*`.
    pub lp_period: f64,
    /// The re-realized certified super-period.
    pub super_period: f64,
    /// One-port violations of the re-realized combined schedule.
    pub one_port_violations: u64,
    /// Every commodity still meets its (re-solved) LP rate.
    pub all_rates_met: bool,
    /// LP solves of the step (re-solve + packing LPs).
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// The super-period switchover cost against the baseline realization.
    pub transition: Option<TransitionCost>,
}

/// One `(class, seed, platform, k, skew)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiCell {
    /// Platform class.
    pub class: PlatformClass,
    /// Base seed of the cell.
    pub seed: u64,
    /// Platform index within the `(class, seed)` pair.
    pub platform: usize,
    /// Concurrent commodities.
    pub k: usize,
    /// Demand distribution.
    pub skew: RateSkew,
    /// Nodes of the platform.
    pub nodes: usize,
    /// The joint super-unit period `T*`.
    pub lp_period: f64,
    /// The certified super-period of the realization.
    pub super_period: f64,
    /// The best common scale the shared packing LP reached.
    pub packed_scale: f64,
    /// `max_c |simulated_rate_c − certified_rate_c| / certified_rate_c`.
    pub realization_gap: f64,
    /// One-port violations of the combined schedule (the hard gate: 0).
    pub one_port_violations: u64,
    /// Trees in the shared super-period across commodities.
    pub trees: usize,
    /// LP solves of the baseline solve + realization.
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Wall-clock milliseconds of the cell (nondeterministic; filtered
    /// before byte comparisons).
    pub solve_ms: u64,
    /// For `k = 1` cells: whether the multi pipeline reproduced the
    /// single-commodity `LOWER BOUND` pipeline bit-for-bit (period bits,
    /// schedule, tree set and simulator report). `None` for `k > 1`.
    pub matches_single: Option<bool>,
    /// Per-commodity certificates, in commodity order.
    pub commodities: Vec<MultiCommodityRecord>,
    /// The post-drift step.
    pub drift: MultiDriftRecord,
}

/// Aggregate accounting of a multi-commodity batch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MultiMeta {
    /// Total wall-clock milliseconds across cells (nondeterministic).
    pub solve_ms: u64,
    /// Linear programs solved.
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Cells run.
    pub cells: u64,
}

impl MultiMeta {
    /// Warm-hit rate across every LP of the batch.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.lp_solves > 0 {
            self.warm_hits as f64 / self.lp_solves as f64
        } else {
            0.0
        }
    }
}

/// The result of a [`run_multi`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiBenchResult {
    /// The configuration that produced the result.
    pub config: MultiBenchConfig,
    /// One cell per `(class, seed, platform, k, skew)`, in configuration
    /// order.
    pub cells: Vec<MultiCell>,
    /// Aggregate accounting.
    pub meta: MultiMeta,
}

/// Samples the cell's `k` commodities from the topology. The sampling
/// stream depends only on `(class, seed, platform)` and the commodity
/// index, so smaller `k` values see a prefix of larger ones.
fn sample_commodities(
    topology: &pm_platform::topology::GeneratedTopology,
    config: &MultiBenchConfig,
    k: usize,
    skew: RateSkew,
    rng: &mut StdRng,
) -> (pm_platform::instances::MulticastInstance, Vec<Commodity>) {
    let mut commodities = Vec::with_capacity(k);
    let mut base = None;
    for c in 0..k {
        let instance = topology.sample_instance(config.density, rng);
        commodities.push(Commodity {
            source: instance.source,
            targets: instance.targets.clone(),
            demand: skew.demand(c),
        });
        if c == 0 {
            base = Some(instance);
        }
    }
    (base.expect("k >= 1"), commodities)
}

/// For `k = 1` cells: replays the classic single-commodity `LOWER BOUND`
/// pipeline on a fresh session over commodity 0's instance and compares it
/// bit-for-bit against the multi path (both run cold on fresh templates,
/// so equal optima must be equal bit patterns).
fn matches_single_pipeline(
    instance: pm_platform::instances::MulticastInstance,
    flow: &pm_core::multi::MultiFlow,
    realization: &pm_core::multi::MultiRealization,
) -> bool {
    let mut single = Session::new(instance);
    let solve = single
        .solve(HeuristicKind::LowerBound)
        .expect("lower bound solves on strongly connected platforms");
    let re = single
        .re_realize(HeuristicKind::LowerBound)
        .expect("lower bound realizes on strongly connected platforms");
    flow.flows[0].period.to_bits() == solve.result.period.to_bits()
        && realization.schedule == re.realization.schedule
        && realization.tree_sets[0] == re.realization.tree_set
        && realization.simulated == re.realization.simulated
}

/// Runs one cell: joint solve + shared realization, the `k = 1` reduction
/// check, then one drift event followed by a warm re-solve +
/// re-realization.
fn run_cell(
    config: &MultiBenchConfig,
    class: PlatformClass,
    seed: u64,
    platform_index: usize,
    k: usize,
    skew: RateSkew,
) -> MultiCell {
    let mut generator = if config.paper_scale {
        TiersLikeGenerator::paper_scale(class, seed + platform_index as u64)
    } else {
        TiersLikeGenerator::reduced_scale(class, seed + platform_index as u64)
    };
    let topology = generator.generate();
    let mut rng =
        StdRng::seed_from_u64(seed ^ ((platform_index as u64) << 32) ^ 0x9a3c_51b7_02de_6f41);
    let (base_instance, commodities) = sample_commodities(&topology, config, k, skew, &mut rng);
    let nodes = base_instance.platform.node_count();
    let single_instance = (k == 1).then(|| base_instance.clone());

    let started = Instant::now();
    let mut session = Session::new(base_instance);
    let solve = session
        .solve_multi(&commodities)
        .unwrap_or_else(|e| panic!("joint solve failed (k={k}, {skew:?}): {e}"));
    let re = session
        .re_realize_multi()
        .unwrap_or_else(|e| panic!("joint realization failed (k={k}, {skew:?}): {e}"));
    let realization = &re.realization;

    let records: Vec<MultiCommodityRecord> = commodities
        .iter()
        .enumerate()
        .map(|(c, commodity)| {
            let lp_rate = solve.flow.rates[c];
            let simulated_rate = realization.simulated_rates[c];
            MultiCommodityRecord {
                commodity: c,
                demand: commodity.demand,
                targets: commodity.targets.len(),
                lp_rate,
                certified_rate: realization.certified_rates[c],
                simulated_rate,
                rate_met: simulated_rate >= lp_rate - RATE_SLACK,
                trees: realization.tag_ranges[c].1 - realization.tag_ranges[c].0,
            }
        })
        .collect();

    let matches_single =
        single_instance.map(|instance| matches_single_pipeline(instance, &solve.flow, realization));

    let lp_period = solve.flow.period;
    let super_period = realization.super_period;
    let packed_scale = realization.packed_scale;
    let realization_gap = realization.realization_gap;
    let one_port_violations = realization.simulated.one_port_violations as u64;
    let trees: usize = realization.tree_sets.iter().map(|s| s.trees().len()).sum();
    let baseline_lp_solves = solve.stats.lp_solves + re.stats.lp_solves;
    let baseline_warm_hits = solve.stats.warm_hits + re.stats.warm_hits;
    let baseline_warm_misses = solve.stats.warm_misses + re.stats.warm_misses;

    // One seeded edge-cost drift event, then the warm path: the stored
    // joint template absorbs the new cost and re-solves from the previous
    // basis; the re-realization seeds its pools from the previous trees and
    // reports the super-period switchover cost.
    let edge = EdgeId(rng.gen_range(0..session.instance().platform.edge_count()) as u32);
    let old_cost = session.instance().platform.cost(edge);
    let factor: f64 = rng.gen_range(0.7..1.4);
    let cost = (old_cost * factor).clamp(COST_CLAMP.0, COST_CLAMP.1);
    session.set_edge_cost(edge, cost).expect("edge exists");
    let event = format!("edge {edge} cost {cost}");

    let drift_solve = session
        .solve_multi(&commodities)
        .unwrap_or_else(|e| panic!("post-drift joint solve failed (k={k}, {skew:?}): {e}"));
    let drift_re = session
        .re_realize_multi()
        .unwrap_or_else(|e| panic!("post-drift joint realization failed (k={k}, {skew:?}): {e}"));
    let all_rates_met = drift_re
        .realization
        .simulated_rates
        .iter()
        .zip(&drift_solve.flow.rates)
        .all(|(&sim, &lp)| sim >= lp - RATE_SLACK);
    let drift = MultiDriftRecord {
        event,
        lp_period: drift_solve.flow.period,
        super_period: drift_re.realization.super_period,
        one_port_violations: drift_re.realization.simulated.one_port_violations as u64,
        all_rates_met,
        lp_solves: drift_solve.stats.lp_solves + drift_re.stats.lp_solves,
        warm_hits: drift_solve.stats.warm_hits + drift_re.stats.warm_hits,
        warm_misses: drift_solve.stats.warm_misses + drift_re.stats.warm_misses,
        transition: drift_re.transition,
    };

    MultiCell {
        class,
        seed,
        platform: platform_index,
        k,
        skew,
        nodes,
        lp_period,
        super_period,
        packed_scale,
        realization_gap,
        one_port_violations,
        trees,
        lp_solves: baseline_lp_solves,
        warm_hits: baseline_warm_hits,
        warm_misses: baseline_warm_misses,
        solve_ms: started.elapsed().as_millis() as u64,
        matches_single,
        commodities: records,
        drift,
    }
}

/// Runs the multi-commodity batch: every `(class, seed, platform, k, skew)`
/// cell on the rayon pool, collected in configuration order.
pub fn run_multi(config: &MultiBenchConfig) -> MultiBenchResult {
    let mut cells: Vec<(PlatformClass, u64, usize, usize, RateSkew)> = Vec::new();
    for &class in &config.classes {
        for &seed in &config.seeds {
            for pi in 0..config.platforms {
                for &k in &config.ks {
                    for &skew in &config.skews {
                        cells.push((class, seed, pi, k, skew));
                    }
                }
            }
        }
    }
    let cells: Vec<MultiCell> = cells
        .into_par_iter()
        .map(|(class, seed, pi, k, skew)| {
            let cell = run_cell(config, class, seed, pi, k, skew);
            if config.progress {
                eprintln!(
                    "fig11: multi cell class={class:?} seed={seed} platform={pi} k={k} \
                     skew={} done (T*={:.4}, {} trees)",
                    skew_key(skew),
                    cell.lp_period,
                    cell.trees
                );
            }
            cell
        })
        .collect();

    let mut meta = MultiMeta {
        cells: cells.len() as u64,
        ..MultiMeta::default()
    };
    for cell in &cells {
        meta.solve_ms += cell.solve_ms;
        meta.lp_solves += cell.lp_solves + cell.drift.lp_solves;
        meta.warm_hits += cell.warm_hits + cell.drift.warm_hits;
        meta.warm_misses += cell.warm_misses + cell.drift.warm_misses;
    }
    MultiBenchResult {
        config: config.clone(),
        cells,
        meta,
    }
}

fn push_transition_json(out: &mut String, transition: Option<&TransitionCost>) {
    match transition {
        None => out.push_str("null"),
        Some(t) => out.push_str(&format!(
            "{{\"drain_time\": {}, \"first_delivery_latency\": {}, \"switch_time\": {}, \
             \"multicasts_lost\": {}, \"throughput_delta\": {}, \"trees_kept\": {}, \
             \"trees_added\": {}, \"trees_dropped\": {}}}",
            json_f64(t.drain_time),
            json_f64(t.first_delivery_latency),
            json_f64(t.switch_time),
            json_f64(t.multicasts_lost),
            json_f64(t.throughput_delta),
            t.trees_kept,
            t.trees_added,
            t.trees_dropped,
        )),
    }
}

/// The multi-commodity batch as a pretty-printed schema-v8 JSON document.
///
/// Every `"solve_ms"` field (the meta total and each cell's wall time) sits
/// on its own line, so the same `grep -v '"solve_ms"'` filter CI applies to
/// the other fig11 artifacts makes two multi runs byte-comparable.
pub fn multi_to_json(result: &MultiBenchResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{MULTI_JSON_SCHEMA}\",\n"));
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"solve_ms\": {},\n", result.meta.solve_ms));
    out.push_str(&format!("    \"lp_solves\": {},\n", result.meta.lp_solves));
    out.push_str(&format!("    \"warm_hits\": {},\n", result.meta.warm_hits));
    out.push_str(&format!(
        "    \"warm_misses\": {},\n",
        result.meta.warm_misses
    ));
    out.push_str(&format!(
        "    \"warm_hit_rate\": {},\n",
        json_f64(result.meta.warm_hit_rate())
    ));
    out.push_str(&format!("    \"cells\": {}\n", result.meta.cells));
    out.push_str("  },\n");
    out.push_str("  \"cells\": [\n");
    for (ci, cell) in result.cells.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"class\": \"{}\",\n",
            class_key(cell.class)
        ));
        out.push_str(&format!("      \"seed\": {},\n", cell.seed));
        out.push_str(&format!("      \"platform\": {},\n", cell.platform));
        out.push_str(&format!("      \"k\": {},\n", cell.k));
        out.push_str(&format!("      \"skew\": \"{}\",\n", skew_key(cell.skew)));
        out.push_str(&format!("      \"nodes\": {},\n", cell.nodes));
        out.push_str(&format!(
            "      \"lp_period\": {},\n",
            json_f64(cell.lp_period)
        ));
        out.push_str(&format!(
            "      \"super_period\": {},\n",
            json_f64(cell.super_period)
        ));
        out.push_str(&format!(
            "      \"packed_scale\": {},\n",
            json_f64(cell.packed_scale)
        ));
        out.push_str(&format!(
            "      \"realization_gap\": {},\n",
            json_f64(cell.realization_gap)
        ));
        out.push_str(&format!(
            "      \"one_port_violations\": {},\n",
            cell.one_port_violations
        ));
        out.push_str(&format!("      \"trees\": {},\n", cell.trees));
        out.push_str(&format!("      \"lp_solves\": {},\n", cell.lp_solves));
        out.push_str(&format!("      \"warm_hits\": {},\n", cell.warm_hits));
        out.push_str(&format!("      \"warm_misses\": {},\n", cell.warm_misses));
        out.push_str(&format!("      \"solve_ms\": {},\n", cell.solve_ms));
        out.push_str(&format!(
            "      \"matches_single\": {},\n",
            match cell.matches_single {
                None => "null".to_string(),
                Some(b) => b.to_string(),
            }
        ));
        out.push_str("      \"commodities\": [\n");
        for (i, c) in cell.commodities.iter().enumerate() {
            let comma = if i + 1 < cell.commodities.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "        {{\"commodity\": {}, \"demand\": {}, \"targets\": {}, \
                 \"lp_rate\": {}, \"certified_rate\": {}, \"simulated_rate\": {}, \
                 \"rate_met\": {}, \"trees\": {}}}{comma}\n",
                c.commodity,
                json_f64(c.demand),
                c.targets,
                json_f64(c.lp_rate),
                json_f64(c.certified_rate),
                json_f64(c.simulated_rate),
                c.rate_met,
                c.trees,
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"drift\": {\n");
        out.push_str(&format!("        \"event\": \"{}\",\n", cell.drift.event));
        out.push_str(&format!(
            "        \"lp_period\": {},\n",
            json_f64(cell.drift.lp_period)
        ));
        out.push_str(&format!(
            "        \"super_period\": {},\n",
            json_f64(cell.drift.super_period)
        ));
        out.push_str(&format!(
            "        \"one_port_violations\": {},\n",
            cell.drift.one_port_violations
        ));
        out.push_str(&format!(
            "        \"all_rates_met\": {},\n",
            cell.drift.all_rates_met
        ));
        out.push_str(&format!(
            "        \"lp_solves\": {},\n",
            cell.drift.lp_solves
        ));
        out.push_str(&format!(
            "        \"warm_hits\": {},\n",
            cell.drift.warm_hits
        ));
        out.push_str(&format!(
            "        \"warm_misses\": {},\n",
            cell.drift.warm_misses
        ));
        out.push_str("        \"transition\": ");
        push_transition_json(&mut out, cell.drift.transition.as_ref());
        out.push_str("\n      }\n");
        let comma = if ci + 1 < result.cells.len() { "," } else { "" };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MultiBenchConfig {
        MultiBenchConfig {
            classes: vec![PlatformClass::Small],
            seeds: vec![42],
            platforms: 1,
            density: 0.5,
            ks: vec![1, 2, 4],
            skews: vec![RateSkew::Uniform, RateSkew::FourToOne],
            paper_scale: false,
            progress: false,
        }
    }

    #[test]
    fn multi_cells_meet_every_commodity_rate_with_zero_violations() {
        let result = run_multi(&tiny_config());
        assert_eq!(result.cells.len(), 6);
        for cell in &result.cells {
            assert_eq!(cell.one_port_violations, 0, "k={} {:?}", cell.k, cell.skew);
            assert_eq!(cell.commodities.len(), cell.k);
            for c in &cell.commodities {
                assert!(
                    c.rate_met,
                    "commodity {} of k={} {:?}: simulated {} vs lp {}",
                    c.commodity, cell.k, cell.skew, c.simulated_rate, c.lp_rate
                );
            }
            if cell.k == 1 {
                assert_eq!(
                    cell.matches_single,
                    Some(true),
                    "k=1 must reduce to the single-commodity pipeline bit-for-bit"
                );
            } else {
                assert_eq!(cell.matches_single, None);
            }
            // The drift step re-solves the stored template from the
            // previous basis and swaps super-periods atomically.
            assert_eq!(cell.drift.one_port_violations, 0);
            assert!(cell.drift.all_rates_met, "k={} {:?}", cell.k, cell.skew);
            assert!(cell.drift.warm_hits >= 1, "post-drift solves warm-start");
            assert!(
                cell.drift.transition.is_some(),
                "post-drift realizations carry transitions"
            );
        }
    }

    #[test]
    fn multi_json_is_deterministic_modulo_wall_time() {
        let config = tiny_config();
        let a = run_multi(&config);
        let b = run_multi(&config);
        let filter = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"solve_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(filter(&multi_to_json(&a)), filter(&multi_to_json(&b)));
        assert!(multi_to_json(&a).contains(MULTI_JSON_SCHEMA));
    }
}
