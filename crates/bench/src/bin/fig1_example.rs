//! Regenerates the worked example of Section 3 / Figure 1: the optimal
//! steady-state throughput is one multicast per time-unit, it cannot be
//! reached by any single multicast tree, and a combination of two weighted
//! trees reaches it. The periodic schedule realizing the optimum is rebuilt
//! through the weighted edge coloring and replayed in the simulator.

use pm_core::exact::ExactTreePacking;
use pm_core::formulations::{MulticastLb, MulticastUb};
use pm_core::heuristics::{Mcph, ThroughputHeuristic};
use pm_platform::instances::figure1_instance;
use pm_sim::simulator::SimulationConfig;

fn main() {
    let inst = figure1_instance();
    println!(
        "Figure 1 platform: {} nodes, {} edges, {} targets",
        inst.platform.node_count(),
        inst.platform.edge_count(),
        inst.target_count()
    );

    let lb = MulticastLb::new(&inst).solve().expect("LB solves");
    let ub = MulticastUb::new(&inst).solve().expect("UB solves");
    println!("Multicast-LB period (lower bound) : {:.4}", lb.period);
    println!("Multicast-UB period (scatter)     : {:.4}", ub.period);

    let exact = ExactTreePacking::new().solve(&inst).expect("exact solves");
    println!(
        "Exact tree packing: throughput {:.4} (period {:.4}) using {} trees out of {} enumerated",
        exact.throughput,
        exact.period,
        exact.tree_set.len(),
        exact.trees_enumerated
    );
    println!(
        "Best single tree  : throughput {:.4} (the paper's claim: a single tree cannot reach 1)",
        exact.best_single_tree_throughput
    );

    let mcph = Mcph.run(&inst).expect("MCPH runs");
    println!("MCPH single tree  : period {:.4}", mcph.period);

    // Rebuild and validate the optimal periodic schedule.
    let validation = pm_sim::validate_tree_set(
        &inst.platform,
        &exact.tree_set,
        SimulationConfig {
            horizon: 100,
            warmup: 10,
            ..SimulationConfig::default()
        },
    )
    .expect("optimal tree set schedules within one period");
    println!(
        "Periodic schedule : {} slots per period, simulated throughput {:.4}, one-port violations {}",
        validation.schedule.slots.len(),
        validation.report.throughput,
        validation.report.one_port_violations
    );
    assert!((validation.throughput - 1.0).abs() < 1e-5);
}
