//! Regenerates the worked example of Section 3 / Figure 1: the optimal
//! steady-state throughput is one multicast per time-unit, it cannot be
//! reached by any single multicast tree, and a combination of two weighted
//! trees reaches it. The periodic schedule realizing the optimum is rebuilt
//! through the weighted edge coloring and replayed in the simulator.

use pm_core::exact::ExactTreePacking;
use pm_core::formulations::{MulticastLb, MulticastUb};
use pm_core::heuristics::{Mcph, ThroughputHeuristic};
use pm_platform::instances::figure1_instance;
use pm_sched::schedule::PeriodicSchedule;
use pm_sim::simulator::{SimulationConfig, Simulator};

fn main() {
    let inst = figure1_instance();
    println!(
        "Figure 1 platform: {} nodes, {} edges, {} targets",
        inst.platform.node_count(),
        inst.platform.edge_count(),
        inst.target_count()
    );

    let lb = MulticastLb::new(&inst).solve().expect("LB solves");
    let ub = MulticastUb::new(&inst).solve().expect("UB solves");
    println!("Multicast-LB period (lower bound) : {:.4}", lb.period);
    println!("Multicast-UB period (scatter)     : {:.4}", ub.period);

    let exact = ExactTreePacking::new().solve(&inst).expect("exact solves");
    println!(
        "Exact tree packing: throughput {:.4} (period {:.4}) using {} trees out of {} enumerated",
        exact.throughput,
        exact.period,
        exact.tree_set.len(),
        exact.trees_enumerated
    );
    println!(
        "Best single tree  : throughput {:.4} (the paper's claim: a single tree cannot reach 1)",
        exact.best_single_tree_throughput
    );

    let mcph = Mcph.run(&inst).expect("MCPH runs");
    println!("MCPH single tree  : period {:.4}", mcph.period);

    // Rebuild and validate the optimal periodic schedule.
    let (scaled, throughput) = exact.tree_set.scaled_to_feasible(&inst.platform);
    let schedule = PeriodicSchedule::from_weighted_trees(&inst.platform, &scaled, 1.0)
        .expect("optimal tree set fits in one period");
    schedule
        .validate(&inst.platform)
        .expect("schedule is one-port valid");
    let report = Simulator::new(SimulationConfig {
        horizon: 100,
        warmup: 10,
    })
    .run_schedule(&inst.platform, &schedule);
    println!(
        "Periodic schedule : {} slots per period, simulated throughput {:.4}, one-port violations {}",
        schedule.slots.len(),
        report.throughput,
        report.one_port_violations
    );
    assert!((throughput - 1.0).abs() < 1e-5);
}
