//! Reproduces Section 5.1.3 (Figures 4 and 5): how far the two LP bounds can
//! be from each other and from the optimum.
//!
//! * Figure 5: on the relay-star gadget the gap between `Multicast-LB` and
//!   `Multicast-UB` is exactly the number of targets.
//! * Figure 4: neither bound is tight in general. We search small random
//!   platforms for instances where the exact tree-packing optimum differs
//!   from both bounds and report the largest gaps found.

use pm_core::exact::ExactTreePacking;
use pm_core::formulations::{MulticastLb, MulticastUb};
use pm_platform::graph::PlatformBuilder;
use pm_platform::instances::{figure5_instance, relay_cross_instance, MulticastInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn report(label: &str, inst: &MulticastInstance) {
    let lb = MulticastLb::new(inst).solve().expect("LB solves").period;
    let ub = MulticastUb::new(inst).solve().expect("UB solves").period;
    let exact = ExactTreePacking::new()
        .solve(inst)
        .expect("exact solves")
        .period;
    println!(
        "{label:<28} |T|={:<2} LB={lb:<8.4} OPT={exact:<8.4} UB={ub:<8.4} UB/LB={:.3}",
        inst.target_count(),
        ub / lb
    );
}

fn random_instance(seed: u64) -> Option<MulticastInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..6usize);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    let costs = [0.5, 1.0, 2.0];
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(0.45) {
                let c = costs[rng.gen_range(0..costs.len())];
                let _ = b.add_edge(nodes[i], nodes[j], c);
            }
        }
    }
    let platform = b.build().ok()?;
    let targets: Vec<_> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.6))
        .collect();
    MulticastInstance::new(platform, nodes[0], targets).ok()
}

fn main() {
    println!("== Figure 5: the LB/UB gap grows like |Ptarget| ==");
    for n in [2usize, 3, 4, 6] {
        report(&format!("figure5({n})"), &figure5_instance(n));
    }
    println!();
    println!("== Relay-cross gadget: the scatter bound is loose ==");
    report("relay_cross", &relay_cross_instance());
    println!();
    println!("== Figure 4 search: instances where neither bound is tight ==");
    let mut best: Option<(f64, u64)> = None;
    let mut found = 0usize;
    for seed in 0..400u64 {
        let Some(inst) = random_instance(seed) else {
            continue;
        };
        let Ok(lb) = MulticastLb::new(&inst).solve() else {
            continue;
        };
        let Ok(ub) = MulticastUb::new(&inst).solve() else {
            continue;
        };
        let Ok(exact) = ExactTreePacking::new().solve(&inst) else {
            continue;
        };
        let lb_gap = exact.period - lb.period;
        let ub_gap = ub.period - exact.period;
        if lb_gap > 1e-4 && ub_gap > 1e-4 {
            found += 1;
            let score = lb_gap.min(ub_gap);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, seed));
                println!(
                    "seed {seed:<4} nodes={} |T|={} LB={:.4} OPT={:.4} UB={:.4}",
                    inst.platform.node_count(),
                    inst.target_count(),
                    lb.period,
                    exact.period,
                    ub.period
                );
            }
        }
    }
    println!(
        "searched 400 random 4-5 node platforms: {found} instances have LB < OPT < UB (strictly)"
    );
    if found == 0 {
        println!(
            "(none found at this size: the LB is usually achievable on tiny dense graphs; \
                  Figure 4's gadget shows it is not always so)"
        );
    }
}
