//! Regenerates the spirit of Figure 12: on one generated hierarchical
//! platform, compare the transfers of the MCPH tree against the multi-source
//! solution of the AUGMENTED SOURCES heuristic, and print the resulting
//! periods (the paper's example: 789 vs 1000 time-units in favour of the
//! multi-source solution).

use pm_core::formulations::{MulticastLb, MulticastUb};
use pm_core::heuristics::{AugmentedSources, Mcph, ThroughputHeuristic};
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11u64);
    let mut generator = TiersLikeGenerator::reduced_scale(PlatformClass::Small, seed);
    let topo = generator.generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let inst = topo.sample_instance(0.6, &mut rng);
    println!(
        "platform: {} nodes ({} WAN, {} MAN, {} LAN), {} edges; {} targets, source = {}",
        inst.platform.node_count(),
        topo.wan.len(),
        topo.man.len(),
        topo.lan.len(),
        inst.platform.edge_count(),
        inst.target_count(),
        inst.platform.name(inst.source),
    );

    let lb = MulticastLb::new(&inst).solve().expect("LB solves").period;
    let ub = MulticastUb::new(&inst).solve().expect("UB solves").period;
    println!("lower bound period: {lb:.4}   scatter period: {ub:.4}");

    let mcph = Mcph.run(&inst).expect("MCPH runs");
    println!();
    println!("MCPH period: {:.4}", mcph.period);
    let tree = mcph.tree.expect("MCPH returns a tree");
    println!("MCPH tree transfers (edge -> messages per time-unit at rate 1/period):");
    for &e in tree.edges() {
        let edge = inst.platform.edge(e);
        println!(
            "  {:>8} -> {:<8} rate {:.4}",
            inst.platform.name(edge.src),
            inst.platform.name(edge.dst),
            1.0 / mcph.period
        );
    }

    let multi = AugmentedSources::default()
        .run(&inst)
        .expect("Multisource MC runs");
    println!();
    println!(
        "Multisource MC period: {:.4} with {} source(s): {:?}",
        multi.period,
        multi.selected_nodes.len(),
        multi
            .selected_nodes
            .iter()
            .map(|&v| inst.platform.name(v).to_string())
            .collect::<Vec<_>>()
    );
    println!();
    println!(
        "ratio MCPH / Multisource MC = {:.3} (the paper's Figure 12 example reports 1000/789 = 1.27)",
        mcph.period / multi.period
    );
}
