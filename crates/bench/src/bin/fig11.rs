//! Regenerates Figure 11 of the paper: heuristic period ratios against the
//! `scatter` upper bound and against the theoretical lower bound, over
//! increasing target densities — for every platform class and a seed grid,
//! evaluated on a single flattened rayon pool.
//!
//! Usage:
//!   fig11 [small|big] [scatter|lower|all] [--paper-scale] [--platforms N]
//!         [--densities a,b,c] [--seeds a,b,c] [--kinds k1,k2,...] [--basic]
//!         [--full] [--smoke] [--realize] [--solver dense|revised]
//!         [--json PATH] [--csv PATH] [--items-csv PATH] [--items-jsonl PATH]
//!         [--drift] [--steps N] [--faults] [--chaos] [--chaos-seed N]
//!         [--multi]
//!
//! With no class argument both classes are swept (the full Figure 11).
//! Machine-readable results are always written — to `fig11_sweep.json` /
//! `fig11_sweep.csv` by default, or wherever `--json` / `--csv` point: two
//! runs with the same configuration produce byte-identical files, which is
//! how CI detects throughput-trajectory drift against the committed
//! `BENCH_fig11_baseline.json`.
//!
//! `--items-csv` / `--items-jsonl` additionally *stream* one row per
//! `(instance, kind)` to disk as work items complete (ordered, so the files
//! are byte-identical across runs and thread counts) — paper-scale
//! `--realize --full` sweeps keep their per-instance detail without holding
//! every report in memory.
//!
//! `--drift` switches to the dynamic-platform scenario sweep: one long-lived
//! `pm_core::Session` per `(class, seed, platform)` instance is driven
//! through a seeded trace of edge-cost walks and node churn (`--steps`
//! events), re-solving and re-realizing after every event; the schema-v5
//! JSON artifact records per-step re-solve wall time, warm-hit rates,
//! throughput deltas and simulator-measured transition costs, and is
//! byte-compared against `BENCH_fig11_drift_baseline.json` in CI.
//!
//! `--faults` switches to the fault-injection frontier sweep: every
//! scenario's steady state is realized robustly at each disjointness level
//! `f` and replayed under a grid of i.i.d. loss rates; the schema-v6 JSON
//! artifact records the throughput-vs-redundancy/delivery frontier plus
//! one crash/recovery round of transition costs, and is byte-compared
//! against `BENCH_fig11_faults_baseline.json` in CI.
//!
//! `--chaos` switches to the solver-chaos sweep: seeded faults are
//! injected into the LP engine itself (plus one injected session panic
//! per scenario, healed from the write-ahead journal) and every heuristic
//! kind gets a budget-capped re-solve; the schema-v7 JSON artifact records
//! the recovery-rung counters and degraded-solve rates, is byte-compared
//! against `BENCH_fig11_chaos_baseline.json` in CI, and the run exits
//! nonzero if any solve exhausts the whole recovery ladder.
//!
//! `--multi` switches to the multi-commodity super-period sweep: each cell
//! of the commodity-count × rate-skew grid solves `k` concurrent demands
//! jointly and realizes them as one shared super-period schedule, then
//! applies one drift event and re-solves warm; the schema-v8 JSON artifact
//! records per-commodity rate certificates, is byte-compared against
//! `BENCH_fig11_multi_baseline.json` in CI, and the run exits nonzero if
//! any commodity misses its LP rate or any one-port violation occurs.

use pm_bench::{
    batch_to_csv, batch_to_json, chaos_to_json, drift_to_json, faults_to_json, format_period_table,
    format_ratio_table, multi_to_json, run_batch_streamed, run_chaos, run_drift, run_faults,
    run_multi, BatchConfig, ChaosBenchConfig, DriftConfig, FaultsConfig, ItemRowFormat, ItemSink,
    MultiBenchConfig,
};
use pm_core::report::HeuristicKind;
use pm_platform::topology::PlatformClass;

/// The value following a flag, or a named usage error (instead of an
/// index-out-of-bounds panic) when the command line ends at the flag.
fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    args.get(i).map(String::as_str).unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut classes: Option<Vec<PlatformClass>> = None;
    let mut reference = "all".to_string();
    let mut config = BatchConfig::quick();
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = Some("fig11_sweep.csv".to_string());
    let mut items_csv_path: Option<String> = None;
    let mut items_jsonl_path: Option<String> = None;
    let mut drift = false;
    let mut faults = false;
    let mut chaos = false;
    let mut multi = false;
    let mut chaos_seed: Option<u64> = None;
    let mut smoke = false;
    let mut steps: Option<usize> = None;
    let mut kinds_explicit = false;
    let mut density_explicit = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "small" => classes = Some(vec![PlatformClass::Small]),
            "big" => classes = Some(vec![PlatformClass::Big]),
            "scatter" | "lower" | "all" => reference = args[i].clone(),
            "--paper-scale" => config.paper_scale = true,
            // Realization stage: decompose every winning solution into
            // weighted trees, color them into a periodic schedule and verify
            // it in the simulator (schema v4 realization columns).
            "--realize" => config.realize = true,
            // Restrict to the reference curves + MCPH (no iterated LP
            // heuristics): useful on large platforms or slow machines.
            "--basic" => {
                kinds_explicit = true;
                config.kinds = pm_bench::sweep::BASIC_KINDS.to_vec();
                config.kinds_big = None;
            }
            // Run the full heuristic set on every class, including the
            // iterated-LP heuristics on big platforms (takes minutes per
            // big instance — see BatchConfig::kinds_big).
            "--full" => {
                kinds_explicit = true;
                config.kinds = HeuristicKind::ALL.to_vec();
                config.kinds_big = None;
            }
            // LP engine selection (the revised simplex is the default; the
            // dense tableau remains as a fallback / differential oracle).
            "--solver" => {
                i += 1;
                match flag_value(&args, i, "--solver") {
                    "dense" => pm_lp::set_default_solver(pm_lp::SolverKind::Dense),
                    "revised" => pm_lp::set_default_solver(pm_lp::SolverKind::Revised),
                    other => {
                        eprintln!("--solver takes dense|revised, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            // The CI bench-smoke configuration: tiny and cheap.
            "--smoke" => {
                smoke = true;
                let ci = BatchConfig::ci_smoke();
                config.platforms = ci.platforms;
                config.densities = ci.densities;
                config.seeds = ci.seeds;
                config.kinds = ci.kinds;
                config.kinds_big = ci.kinds_big;
            }
            // Dynamic-platform scenario sweep on long-lived sessions.
            "--drift" => drift = true,
            // Fault-injected robust-realization frontier sweep.
            "--faults" => faults = true,
            // Solver-chaos sweep: recovery ladder + degradable budgets.
            "--chaos" => chaos = true,
            // Multi-commodity super-period sweep (k × skew grid).
            "--multi" => multi = true,
            // Seed of the chaos injection plans (chaos mode only).
            "--chaos-seed" => {
                i += 1;
                chaos_seed = Some(
                    flag_value(&args, i, "--chaos-seed")
                        .parse()
                        .expect("--chaos-seed takes an integer"),
                );
            }
            // Drift events per scenario (drift mode only).
            "--steps" => {
                i += 1;
                steps = Some(
                    flag_value(&args, i, "--steps")
                        .parse()
                        .expect("--steps takes an integer"),
                );
            }
            // Streamed per-item rows (see the module docs).
            "--items-csv" => {
                i += 1;
                items_csv_path = Some(flag_value(&args, i, "--items-csv").to_string());
            }
            "--items-jsonl" => {
                i += 1;
                items_jsonl_path = Some(flag_value(&args, i, "--items-jsonl").to_string());
            }
            // Explicit curve selection by stable key (see `pm_bench::emit`).
            "--kinds" => {
                i += 1;
                kinds_explicit = true;
                config.kinds = flag_value(&args, i, "--kinds")
                    .split(',')
                    .map(|k| {
                        HeuristicKind::ALL
                            .into_iter()
                            .find(|&kind| pm_bench::emit::kind_key(kind) == k)
                            .unwrap_or_else(|| {
                                eprintln!(
                                    "unknown heuristic kind {k:?}; valid keys: {:?}",
                                    HeuristicKind::ALL.map(pm_bench::emit::kind_key)
                                );
                                std::process::exit(2);
                            })
                    })
                    .collect();
                config.kinds_big = None;
            }
            "--platforms" => {
                i += 1;
                config.platforms = flag_value(&args, i, "--platforms")
                    .parse()
                    .expect("--platforms takes an integer");
            }
            "--seeds" => {
                i += 1;
                config.seeds = flag_value(&args, i, "--seeds")
                    .split(',')
                    .map(|s| s.parse().expect("--seeds takes comma-separated integers"))
                    .collect();
            }
            // Backwards-compatible alias: a single base seed.
            "--seed" => {
                i += 1;
                config.seeds = vec![flag_value(&args, i, "--seed")
                    .parse()
                    .expect("--seed takes an integer")];
            }
            "--densities" => {
                i += 1;
                density_explicit = true;
                config.densities = flag_value(&args, i, "--densities")
                    .split(',')
                    .map(|d| d.parse().expect("--densities takes comma-separated floats"))
                    .collect();
            }
            "--json" => {
                i += 1;
                json_path = Some(flag_value(&args, i, "--json").to_string());
            }
            "--csv" => {
                i += 1;
                csv_path = Some(flag_value(&args, i, "--csv").to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(classes) = &classes {
        config.classes = classes.clone();
    }
    if [drift, faults, chaos, multi].iter().filter(|&&m| m).count() > 1 {
        eprintln!("--drift, --faults, --chaos and --multi are distinct modes; pick one");
        std::process::exit(2);
    }

    if multi {
        let mut multi_config = if smoke {
            MultiBenchConfig::smoke()
        } else {
            MultiBenchConfig::quick()
        };
        if let Some(classes) = classes {
            multi_config.classes = classes;
        }
        multi_config.seeds = config.seeds.clone();
        multi_config.platforms = config.platforms;
        multi_config.paper_scale = config.paper_scale;
        if density_explicit {
            multi_config.density = config.densities[0];
            if config.densities.len() > 1 {
                eprintln!(
                    "fig11: note: --multi samples one target set per commodity; using density {} \
                     and ignoring the rest of the grid",
                    multi_config.density
                );
            }
        }
        // Sweep-only flags have no multi counterpart: refuse them loudly
        // instead of exiting "successfully" without the requested files.
        for (flag, given) in [
            ("--csv", csv_path != Some("fig11_sweep.csv".to_string())),
            ("--items-csv", items_csv_path.is_some()),
            ("--items-jsonl", items_jsonl_path.is_some()),
            ("--realize", config.realize),
            ("--steps", steps.is_some()),
            ("--kinds", kinds_explicit),
        ] {
            if given {
                eprintln!(
                    "{flag} applies to the Figure 11 sweep only; --multi writes a single JSON \
                     artifact (use --json)"
                );
                std::process::exit(2);
            }
        }
        multi_config.progress = true;
        eprintln!(
            "running multi-commodity batch: classes={:?}, seeds={:?}, platforms={}, ks={:?}, \
             skews={:?} ({} worker threads)",
            multi_config.classes,
            multi_config.seeds,
            multi_config.platforms,
            multi_config.ks,
            multi_config.skews,
            rayon::current_num_threads()
        );
        let result = run_multi(&multi_config);
        eprintln!(
            "fig11: multi {} cells, {} LP solves ({} warm hits, {:.0}% warm), {} ms total",
            result.meta.cells,
            result.meta.lp_solves,
            result.meta.warm_hits,
            100.0 * result.meta.warm_hit_rate(),
            result.meta.solve_ms,
        );
        let mut rates_missed = 0usize;
        let mut violations = 0u64;
        for cell in &result.cells {
            rates_missed += cell.commodities.iter().filter(|c| !c.rate_met).count();
            if !cell.drift.all_rates_met {
                rates_missed += 1;
            }
            violations += cell.one_port_violations + cell.drift.one_port_violations;
            eprintln!(
                "fig11:   class={:?} seed={} platform={} k={} skew={:<11} T*={:.4} \
                 super-period {:.4}, {} trees, rates [{}]{}",
                cell.class,
                cell.seed,
                cell.platform,
                cell.k,
                pm_bench::multi::skew_key(cell.skew),
                cell.lp_period,
                cell.super_period,
                cell.trees,
                cell.commodities
                    .iter()
                    .map(|c| format!("{:.4}", c.simulated_rate))
                    .collect::<Vec<_>>()
                    .join(", "),
                match cell.matches_single {
                    Some(true) => ", k=1 ≡ single pipeline",
                    Some(false) => ", k=1 DIVERGED from single pipeline",
                    None => "",
                },
            );
        }
        let path = json_path.unwrap_or_else(|| "fig11_multi.json".to_string());
        std::fs::write(&path, multi_to_json(&result))
            .unwrap_or_else(|e| panic!("writing multi JSON to {path}: {e}"));
        eprintln!("wrote multi JSON results to {path}");
        let diverged = result.cells.iter().any(|c| c.matches_single == Some(false));
        if rates_missed > 0 || violations > 0 || diverged {
            eprintln!(
                "fig11: FAIL: {rates_missed} commodity rates missed, {violations} one-port \
                 violations, k=1 divergence: {diverged}"
            );
            std::process::exit(1);
        }
        return;
    }

    if chaos {
        let mut chaos_config = if smoke {
            ChaosBenchConfig::smoke()
        } else {
            ChaosBenchConfig::quick()
        };
        if let Some(classes) = classes {
            chaos_config.classes = classes;
        }
        chaos_config.seeds = config.seeds.clone();
        chaos_config.platforms = config.platforms;
        chaos_config.paper_scale = config.paper_scale;
        if let Some(seed) = chaos_seed {
            chaos_config.chaos_seed = seed;
        }
        if kinds_explicit {
            chaos_config.kinds = config.kinds.clone();
        }
        if density_explicit {
            chaos_config.density = config.densities[0];
            if config.densities.len() > 1 {
                eprintln!(
                    "fig11: note: --chaos samples one instance per scenario; using density {} \
                     and ignoring the rest of the grid",
                    chaos_config.density
                );
            }
        }
        // Sweep-only outputs have no chaos counterpart: refuse them loudly
        // instead of exiting "successfully" without the requested files.
        for (flag, given) in [
            ("--csv", csv_path != Some("fig11_sweep.csv".to_string())),
            ("--items-csv", items_csv_path.is_some()),
            ("--items-jsonl", items_jsonl_path.is_some()),
            ("--realize", config.realize),
            ("--steps", steps.is_some()),
        ] {
            if given {
                eprintln!(
                    "{flag} applies to the Figure 11 sweep only; --chaos writes a single JSON \
                     artifact (use --json)"
                );
                std::process::exit(2);
            }
        }
        chaos_config.progress = true;
        eprintln!(
            "running chaos batch: classes={:?}, seeds={:?}, platforms={}, kinds={:?}, \
             chaos_seed={} (scenarios sequential, solves on {} worker threads)",
            chaos_config.classes,
            chaos_config.seeds,
            chaos_config.platforms,
            chaos_config.kinds,
            chaos_config.chaos_seed,
            rayon::current_num_threads()
        );
        let result = run_chaos(&chaos_config);
        let rungs = result.meta.ladder.recovered_by_rung;
        eprintln!(
            "fig11: chaos {} scenarios, {} solves under injection ({} struck, {:.0}%), \
             rungs [first={} cold={} refactor={} swap={} bland={} dense={}], \
             {} unrecovered, {} panics healed",
            result.meta.scenarios,
            result.meta.ladder.solves,
            result.meta.ladder.injected,
            100.0 * result.meta.injected_rate(),
            rungs[0],
            rungs[1],
            rungs[2],
            rungs[3],
            rungs[4],
            rungs[5],
            result.meta.ladder.unrecovered,
            result.meta.panics_healed,
        );
        eprintln!(
            "fig11: chaos budget phase: {} solves, {} degraded ({:.0}%)",
            result.meta.budget.solves,
            result.meta.budget.degraded,
            100.0 * result.meta.degraded_rate(),
        );
        let path = json_path.unwrap_or_else(|| "fig11_chaos.json".to_string());
        std::fs::write(&path, chaos_to_json(&result))
            .unwrap_or_else(|e| panic!("writing chaos JSON to {path}: {e}"));
        eprintln!("wrote chaos JSON results to {path}");
        if result.meta.ladder.unrecovered > 0 {
            eprintln!(
                "fig11: FAIL: {} solves exhausted the whole recovery ladder",
                result.meta.ladder.unrecovered
            );
            std::process::exit(1);
        }
        return;
    }

    if faults {
        let mut faults_config = if smoke {
            FaultsConfig::smoke()
        } else {
            FaultsConfig::quick()
        };
        if let Some(classes) = classes {
            faults_config.classes = classes;
        }
        faults_config.seeds = config.seeds.clone();
        faults_config.platforms = config.platforms;
        faults_config.paper_scale = config.paper_scale;
        if kinds_explicit {
            // The faults sweep realizes a single kind robustly.
            faults_config.kind = config.kinds[0];
            if config.kinds.len() > 1 {
                eprintln!(
                    "fig11: note: --faults realizes one kind; using {} and ignoring the rest",
                    pm_bench::emit::kind_key(faults_config.kind)
                );
            }
        }
        if density_explicit {
            faults_config.density = config.densities[0];
            if config.densities.len() > 1 {
                eprintln!(
                    "fig11: note: --faults samples one instance per scenario; using density {} \
                     and ignoring the rest of the grid",
                    faults_config.density
                );
            }
        }
        // Sweep-only outputs have no faults counterpart: refuse them loudly
        // instead of exiting "successfully" without the requested files.
        for (flag, given) in [
            ("--csv", csv_path != Some("fig11_sweep.csv".to_string())),
            ("--items-csv", items_csv_path.is_some()),
            ("--items-jsonl", items_jsonl_path.is_some()),
            ("--realize", config.realize),
            ("--steps", steps.is_some()),
        ] {
            if given {
                eprintln!(
                    "{flag} applies to the Figure 11 sweep only; --faults writes a single JSON \
                     artifact (use --json)"
                );
                std::process::exit(2);
            }
        }
        faults_config.progress = true;
        eprintln!(
            "running faults batch: classes={:?}, seeds={:?}, platforms={}, losses={:?}, f={:?}, \
             kind={} ({} worker threads)",
            faults_config.classes,
            faults_config.seeds,
            faults_config.platforms,
            faults_config.loss_rates,
            faults_config.redundancy,
            pm_bench::emit::kind_key(faults_config.kind),
            rayon::current_num_threads()
        );
        let result = run_faults(&faults_config);
        eprintln!(
            "fig11: faults {} scenarios, {} LP solves ({} warm hits, {:.0}% warm), {} ms total",
            result.meta.scenarios,
            result.meta.lp_solves,
            result.meta.warm_hits,
            100.0 * result.meta.warm_hit_rate(),
            result.meta.solve_ms,
        );
        let cell_line = |label: &str, cell: &pm_bench::faults::FrontierCell| {
            let worst = cell
                .losses
                .iter()
                .rev()
                .find(|p| p.loss > 0.0)
                .map(|p| format!("{:.3}@{}", p.delivery_ratio, p.loss))
                .unwrap_or_else(|| "-".to_string());
            eprintln!(
                "fig11:   {label} f={} trees={} throughput {:.4} (sacrifice {:.1}%), \
                 delivery {} survives_edge_loss={}",
                cell.f,
                cell.trees,
                cell.robust_throughput,
                100.0 * cell.throughput_sacrifice,
                worst,
                cell.survives_single_edge_loss,
            );
        };
        for cell in &result.worked_example.frontier {
            cell_line("worked-example", cell);
        }
        for scenario in &result.scenarios {
            for cell in &scenario.frontier {
                cell_line(
                    &format!(
                        "class={:?} seed={} platform={}",
                        scenario.class, scenario.seed, scenario.platform
                    ),
                    cell,
                );
            }
        }
        let path = json_path.unwrap_or_else(|| "fig11_faults.json".to_string());
        std::fs::write(&path, faults_to_json(&result))
            .unwrap_or_else(|e| panic!("writing faults JSON to {path}: {e}"));
        eprintln!("wrote faults JSON results to {path}");
        return;
    }

    if drift {
        let mut drift_config = if smoke {
            DriftConfig::smoke()
        } else {
            DriftConfig::quick()
        };
        if let Some(classes) = classes {
            drift_config.classes = classes;
        }
        drift_config.seeds = config.seeds.clone();
        drift_config.platforms = config.platforms;
        drift_config.paper_scale = config.paper_scale;
        if kinds_explicit {
            drift_config.kinds = config.kinds.clone();
        }
        if density_explicit {
            // One instance per scenario: the drift sweep has a single
            // density, not a grid.
            drift_config.density = config.densities[0];
            if config.densities.len() > 1 {
                eprintln!(
                    "fig11: note: --drift samples one instance per scenario; using density {} \
                     and ignoring the rest of the grid",
                    drift_config.density
                );
            }
        }
        if let Some(steps) = steps {
            drift_config.steps = steps;
        }
        // Sweep-only outputs have no drift counterpart: refuse them loudly
        // instead of exiting "successfully" without the requested files.
        for (flag, given) in [
            ("--csv", csv_path != Some("fig11_sweep.csv".to_string())),
            ("--items-csv", items_csv_path.is_some()),
            ("--items-jsonl", items_jsonl_path.is_some()),
            ("--realize", config.realize),
        ] {
            if given {
                eprintln!(
                    "{flag} applies to the Figure 11 sweep only; --drift writes a single JSON \
                     artifact (use --json)"
                );
                std::process::exit(2);
            }
        }
        drift_config.progress = true;
        eprintln!(
            "running drift batch: classes={:?}, seeds={:?}, platforms={}, steps={}, kinds={:?} \
             ({} worker threads)",
            drift_config.classes,
            drift_config.seeds,
            drift_config.platforms,
            drift_config.steps,
            drift_config.kinds,
            rayon::current_num_threads()
        );
        let result = run_drift(&drift_config);
        eprintln!(
            "fig11: drift {} scenarios, {} LP solves ({} warm hits, {:.0}% warm), {} ms total",
            result.meta.scenarios,
            result.meta.lp_solves,
            result.meta.warm_hits,
            100.0 * result.meta.warm_hit_rate(),
            result.meta.solve_ms,
        );
        for scenario in &result.scenarios {
            let last = scenario.steps.last().expect("scenario has steps");
            for kind in &last.kinds {
                let transitions: usize = scenario
                    .steps
                    .iter()
                    .flat_map(|s| &s.kinds)
                    .filter(|k| k.kind == kind.kind && k.transition.is_some())
                    .count();
                eprintln!(
                    "fig11:   class={:?} seed={} platform={} {:<10} final period {:.4}, \
                     gap {:.2e}, {} transitions",
                    scenario.class,
                    scenario.seed,
                    scenario.platform,
                    pm_bench::emit::kind_key(kind.kind),
                    kind.period,
                    kind.realization_gap,
                    transitions,
                );
            }
        }
        let path = json_path.unwrap_or_else(|| "fig11_drift.json".to_string());
        std::fs::write(&path, drift_to_json(&result))
            .unwrap_or_else(|e| panic!("writing drift JSON to {path}: {e}"));
        eprintln!("wrote drift JSON results to {path}");
        return;
    }
    let json_path = json_path.or_else(|| Some("fig11_sweep.json".to_string()));

    // Long sweeps (--full / --paper-scale) must not go silent; progress goes
    // to stderr only, so the JSON/CSV artifacts stay byte-comparable.
    config.progress = true;

    eprintln!(
        "running Figure 11 batch: classes={:?}, paper_scale={}, platforms={}, seeds={:?}, \
         densities={:?} ({} worker threads)",
        config.classes,
        config.paper_scale,
        config.platforms,
        config.seeds,
        config.densities,
        rayon::current_num_threads()
    );
    let open_sink = |path: &Option<String>, format: ItemRowFormat| {
        path.as_ref().map(|path| {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("creating streamed item file {path}: {e}"));
            ItemSink::new(format, Box::new(std::io::BufWriter::new(file)))
                .unwrap_or_else(|e| panic!("initialising streamed item file {path}: {e}"))
        })
    };
    let csv_sink = open_sink(&items_csv_path, ItemRowFormat::Csv);
    let jsonl_sink = open_sink(&items_jsonl_path, ItemRowFormat::Jsonl);
    let sinks: Vec<&ItemSink> = csv_sink.iter().chain(jsonl_sink.iter()).collect();
    let batch = run_batch_streamed(&config, &sinks);
    drop(sinks);
    for (sink, path) in [(csv_sink, &items_csv_path), (jsonl_sink, &items_jsonl_path)] {
        if let (Some(sink), Some(path)) = (sink, path) {
            sink.finish()
                .unwrap_or_else(|e| panic!("finishing streamed item file {path}: {e}"));
            eprintln!("streamed per-item rows to {path}");
        }
    }
    eprintln!(
        "fig11: {} LP solves ({} warm hits, {} cold), {} ms total work-item time",
        batch.meta.lp_solves, batch.meta.warm_hits, batch.meta.warm_misses, batch.meta.solve_ms
    );
    for &(kind, stats) in &batch.meta.per_kind {
        let rate = if stats.lp_solves > 0 {
            100.0 * stats.warm_hits as f64 / stats.lp_solves as f64
        } else {
            0.0
        };
        eprintln!(
            "fig11:   {:<22} {:>6} LP solves, {:>6} warm hits ({rate:.0}%)",
            pm_bench::emit::kind_key(kind),
            stats.lp_solves,
            stats.warm_hits,
        );
    }
    if !batch.meta.realization.is_empty() {
        eprintln!("fig11: realization (simulator-verified schedules):");
        for &(kind, agg) in &batch.meta.realization {
            eprintln!(
                "fig11:   {:<22} {:>4} realized, {:>2} failed, {} one-port violations, \
                 realization_gap mean {:.3}% max {:.3}%",
                pm_bench::emit::kind_key(kind),
                agg.realized,
                agg.failed,
                agg.one_port_violations,
                100.0 * agg.mean_gap(),
                100.0 * agg.max_gap,
            );
        }
    }

    for sweep in &batch.sweeps {
        println!(
            "== class {:?}, seed {}: mean periods ==",
            sweep.config.class, sweep.config.seed
        );
        println!("{}", format_period_table(sweep));
        if reference == "scatter" || reference == "all" {
            println!("== Figure 11 (a)/(c): ratios vs scatter ==");
            println!("{}", format_ratio_table(sweep, HeuristicKind::Scatter));
        }
        if reference == "lower" || reference == "all" {
            println!("== Figure 11 (b)/(d): ratios vs lower bound ==");
            println!("{}", format_ratio_table(sweep, HeuristicKind::LowerBound));
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, batch_to_json(&batch))
            .unwrap_or_else(|e| panic!("writing JSON to {path}: {e}"));
        eprintln!("wrote JSON results to {path}");
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, batch_to_csv(&batch))
            .unwrap_or_else(|e| panic!("writing CSV to {path}: {e}"));
        eprintln!("wrote CSV results to {path}");
    }
}
