//! Regenerates Figure 11 of the paper: heuristic period ratios against the
//! `scatter` upper bound and against the theoretical lower bound, for the
//! "small" and "big" platform classes, over increasing target densities.
//!
//! Usage:
//!   fig11 [small|big] [scatter|lower|all] [--paper-scale] [--platforms N]
//!         [--densities a,b,c] [--seed S]

use pm_bench::{format_period_table, format_ratio_table, run_sweep, SweepConfig};
use pm_core::report::HeuristicKind;
use pm_platform::topology::PlatformClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut class = PlatformClass::Small;
    let mut reference = "all".to_string();
    let mut config = SweepConfig::quick(class);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "small" => class = PlatformClass::Small,
            "big" => class = PlatformClass::Big,
            "scatter" | "lower" | "all" => reference = args[i].clone(),
            "--paper-scale" => config.paper_scale = true,
            // Restrict to the reference curves + MCPH (no iterated LP
            // heuristics): useful on large platforms or slow machines.
            "--basic" => {
                config.kinds = vec![
                    HeuristicKind::Scatter,
                    HeuristicKind::LowerBound,
                    HeuristicKind::Broadcast,
                    HeuristicKind::Mcph,
                ];
            }
            "--platforms" => {
                i += 1;
                config.platforms = args[i].parse().expect("--platforms takes an integer");
            }
            "--seed" => {
                i += 1;
                config.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--densities" => {
                i += 1;
                config.densities = args[i]
                    .split(',')
                    .map(|d| d.parse().expect("--densities takes comma-separated floats"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    config.class = class;

    eprintln!(
        "running Figure 11 sweep: class={:?}, paper_scale={}, platforms={}, densities={:?}",
        config.class, config.paper_scale, config.platforms, config.densities
    );
    let result = run_sweep(&config);

    println!("== mean periods ==");
    println!("{}", format_period_table(&result));
    if reference == "scatter" || reference == "all" {
        println!("== Figure 11 (a)/(c): ratios vs scatter ==");
        println!("{}", format_ratio_table(&result, HeuristicKind::Scatter));
    }
    if reference == "lower" || reference == "all" {
        println!("== Figure 11 (b)/(d): ratios vs lower bound ==");
        println!("{}", format_ratio_table(&result, HeuristicKind::LowerBound));
    }
}
