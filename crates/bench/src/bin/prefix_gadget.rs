//! Demonstrates the COMPACT-PREFIX reduction (Theorem 5): on the Figure 3
//! gadget, a set cover of size at most B yields a prefix allocation scheme
//! sustaining one parallel-prefix operation per time-unit, while an
//! undersized bound blows the source's send budget.

use pm_complexity::set_cover::SetCoverInstance;
use pm_complexity::PrefixGadget;

fn main() {
    let sc = SetCoverInstance::paper_example();
    let optimum = sc.minimum_cover();
    println!(
        "set-cover instance: {} elements, {} subsets, minimum cover {}",
        sc.universe(),
        sc.num_subsets(),
        optimum.len()
    );

    for bound in [optimum.len(), optimum.len() - 1] {
        let gadget = PrefixGadget::new(&sc, bound.max(1));
        let budget = gadget.scheme_budget(&optimum);
        println!();
        println!(
            "B = {}: platform with {} nodes / {} edges, participant speed w = {:.4}",
            bound.max(1),
            gadget.platform.node_count(),
            gadget.platform.edge_count(),
            gadget.participant_speed()
        );
        let max_send = budget.send.iter().copied().fold(0.0, f64::max);
        let max_recv = budget.recv.iter().copied().fold(0.0, f64::max);
        let max_comp = budget.compute.iter().copied().fold(0.0, f64::max);
        println!("canonical scheme budgets: send {max_send:.4}, recv {max_recv:.4}, compute {max_comp:.4}");
        if budget.max() <= 1.0 + 1e-9 {
            println!(
                "=> one parallel prefix per time-unit is sustainable (cover of size <= B exists)"
            );
        } else {
            println!("=> the scheme exceeds one time-unit (no cover of size <= B)");
        }
    }
}
