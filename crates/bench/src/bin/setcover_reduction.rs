//! Demonstrates the NP-completeness reduction of Theorems 1-2: covers of the
//! MINIMUM-SET-COVER instance map to single multicast trees on the Figure 2
//! gadget (and back), and the achievable single-tree throughput mirrors the
//! optimal cover size.

use pm_complexity::set_cover::SetCoverInstance;
use pm_complexity::MulticastGadget;
use pm_core::exact::ExactTreePacking;
use pm_core::heuristics::{Mcph, ThroughputHeuristic};

fn main() {
    println!("== Paper example (Figure 2) ==");
    let sc = SetCoverInstance::paper_example();
    let greedy = sc.greedy_cover();
    let exact = sc.minimum_cover();
    println!(
        "universe {} elements, {} subsets",
        sc.universe(),
        sc.num_subsets()
    );
    println!("greedy cover size : {}", greedy.len());
    println!("minimum cover size: {}", exact.len());

    for bound in [exact.len(), exact.len().saturating_sub(1).max(1)] {
        let gadget = MulticastGadget::new(&sc, bound);
        let tree = gadget.cover_to_tree(&exact).expect("cover maps to a tree");
        let period = tree.period(&gadget.instance.platform);
        println!(
            "B = {bound}: single tree from the minimum cover has period {period:.4} \
             (throughput {:.4}) -> cover of size <= B {}",
            1.0 / period,
            if exact.len() <= bound {
                "exists"
            } else {
                "does not exist"
            }
        );
    }

    println!();
    println!("== Gadget as a worst case for the heuristics ==");
    let gadget = MulticastGadget::new(&sc, exact.len());
    let inst = &gadget.instance;
    let mcph = Mcph.run(inst).expect("MCPH runs");
    let opt = ExactTreePacking::new().solve(inst).expect("exact solves");
    let cover_from_mcph = gadget.tree_to_cover(mcph.tree.as_ref().expect("MCPH returns a tree"));
    println!("exact tree-packing period      : {:.4}", opt.period);
    println!(
        "best single tree period        : {:.4}",
        1.0 / opt.best_single_tree_throughput
    );
    println!(
        "MCPH period                    : {:.4} (uses {} subsets as relays)",
        mcph.period,
        cover_from_mcph.len()
    );
    println!(
        "any single-tree heuristic on this gadget implicitly solves set cover: \
         its relay count ({}) is an upper bound on the instance's cover number ({}).",
        cover_from_mcph.len(),
        exact.len()
    );
    assert!(sc.is_cover(&cover_from_mcph));

    println!();
    println!("== Random instances: reduction equivalence check ==");
    for seed in 0..5u64 {
        let sc = SetCoverInstance::random(7, 5, seed);
        let optimum = sc.minimum_cover().len();
        let gadget = MulticastGadget::new(&sc, optimum);
        let (has_cover, period) = gadget.verify_theorem1();
        println!(
            "seed {seed}: optimum cover {optimum}, B = {optimum}: cover exists = {has_cover}, \
             tree period = {period:.4}"
        );
    }
}
