//! # pm-bench
//!
//! The experiment harness of the reproduction: parameter sweeps over
//! Tiers-like platforms (Figure 11 of the paper), worked-example binaries
//! (Figures 1, 4/5, 12, the set-cover and prefix gadgets) and the Criterion
//! micro-benchmarks.
//!
//! The library part contains the sweep machinery; the `src/bin` binaries
//! print the tables documented in `EXPERIMENTS.md`.

pub mod chaos;
pub mod drift;
pub mod emit;
pub mod faults;
pub mod multi;
pub mod sweep;
pub mod table;

pub use chaos::{chaos_to_json, run_chaos, ChaosBenchConfig, ChaosResult, CHAOS_JSON_SCHEMA};
pub use drift::{drift_to_json, run_drift, DriftConfig, DriftResult};
pub use emit::{batch_to_csv, batch_to_json, sweep_to_csv, sweep_to_json, ItemRowFormat, ItemSink};
pub use faults::{faults_to_json, run_faults, FaultsConfig, FaultsResult};
pub use multi::{
    multi_to_json, run_multi, MultiBenchConfig, MultiBenchResult, RateSkew, MULTI_JSON_SCHEMA,
};
pub use sweep::{
    run_batch, run_batch_streamed, run_sweep, BatchConfig, BatchMeta, BatchResult, SweepConfig,
    SweepPoint, SweepResult,
};
pub use table::{format_period_table, format_ratio_table};
