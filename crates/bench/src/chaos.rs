//! The `--chaos` sweep: the recovery ladder and degradable budgets under
//! seeded fault injection.
//!
//! Where the `--faults` sweep injects *message loss* into realized
//! schedules, the chaos sweep injects *solver faults* into the LP engine
//! itself ([`pm_lp::set_chaos`]): singular factorizations, poisoned
//! warm-start hints, pricing stalls and NaN writes strike roughly one
//! solve in three, and every strike must end in a verified optimum — the
//! artifact records which recovery rung won each solve. Each scenario
//! additionally drives one injected *session panic* through the
//! write-ahead journal (healed, not propagated) and one budget-capped
//! re-solve per heuristic kind, measuring the degraded anytime solution's
//! gap against the certified optimum.
//!
//! Determinism: whether a solve is struck is a pure function of the chaos
//! seed and the problem's structural signature, and the global outcome
//! counters are commutative sums — but this module also phase-separates
//! those counters (ladder phase vs budget phase) and toggles the
//! process-wide chaos configuration per phase, so scenarios run
//! *sequentially*. Two runs at any `RAYON_NUM_THREADS` produce
//! byte-identical artifacts except for the `"solve_ms"` wall-time lines,
//! which CI filters exactly as it does for the other fig11 artifacts.

use crate::drift::pick_disable_candidate;
use crate::emit::{class_key, json_f64, kind_key};
use pm_core::report::HeuristicKind;
use pm_core::session::Session;
use pm_lp::{chaos_counters, reset_chaos_counters, set_chaos, ChaosConfig, ChaosCounters};
use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the chaos artifact (`fig11 --chaos --json`). v7 continues
/// the fig11 artifact lineage: the first schema carrying recovery-ladder
/// rung counters and budget-degradation rates.
pub const CHAOS_JSON_SCHEMA: &str = "pm-bench/fig11-chaos/v7";

/// Default chaos seed of the sweep (any fixed value works; this one is
/// baked into the committed baseline).
pub const DEFAULT_CHAOS_SEED: u64 = 0xC4A0_55EE;

/// Configuration of a chaos batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosBenchConfig {
    /// Platform classes to sweep.
    pub classes: Vec<PlatformClass>,
    /// Base seeds; each `(class, seed)` pair contributes `platforms`
    /// scenarios.
    pub seeds: Vec<u64>,
    /// Random platforms per `(class, seed)` cell.
    pub platforms: usize,
    /// Target density of the sampled instances.
    pub density: f64,
    /// Heuristic kinds solved under injection.
    pub kinds: Vec<HeuristicKind>,
    /// Seed of the fault-injection plans (see [`pm_lp::ChaosConfig`]).
    pub chaos_seed: u64,
    /// Node-churn rounds per scenario (each round masks one relay, re-solves
    /// every kind, restores it and re-solves again — lengthening the
    /// warm-start chains the faults strike).
    pub churn_rounds: usize,
    /// Paper-scale platform sizes.
    pub paper_scale: bool,
    /// Print per-scenario progress to stderr.
    pub progress: bool,
}

impl ChaosBenchConfig {
    /// The default `fig11 --chaos` configuration.
    pub fn quick() -> Self {
        ChaosBenchConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42, 43],
            platforms: 2,
            density: 0.5,
            kinds: crate::sweep::BASIC_KINDS.to_vec(),
            chaos_seed: DEFAULT_CHAOS_SEED,
            churn_rounds: 2,
            paper_scale: false,
            progress: false,
        }
    }

    /// The CI chaos-smoke configuration: tiny and cheap, but still striking
    /// enough solves to populate several recovery rungs.
    pub fn smoke() -> Self {
        ChaosBenchConfig {
            classes: vec![PlatformClass::Small, PlatformClass::Big],
            seeds: vec![42],
            platforms: 1,
            churn_rounds: 1,
            ..ChaosBenchConfig::quick()
        }
    }
}

/// Counter delta of one batch phase (field-wise difference of two
/// [`ChaosCounters`] snapshots).
fn counters_delta(after: &ChaosCounters, before: &ChaosCounters) -> ChaosCounters {
    let mut recovered_by_rung = [0u64; 6];
    for (i, slot) in recovered_by_rung.iter_mut().enumerate() {
        *slot = after.recovered_by_rung[i] - before.recovered_by_rung[i];
    }
    ChaosCounters {
        solves: after.solves - before.solves,
        injected: after.injected - before.injected,
        recovered_by_rung,
        degraded: after.degraded - before.degraded,
        unrecovered: after.unrecovered - before.unrecovered,
    }
}

/// One heuristic kind of a chaos scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosKindResult {
    /// The heuristic kind.
    pub kind: HeuristicKind,
    /// Final period after the churn rounds (chaos on: must equal the
    /// fault-free period, which is what the baseline comparison pins).
    pub period: f64,
    /// LP solves of the kind across the injection phase.
    pub lp_solves: u64,
    /// Solves that warm-started.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Phase-1 pivots of the clean probe solve (budget phase).
    pub probe_phase1: u64,
    /// Phase-2 pivots of the clean probe solve (budget phase).
    pub probe_phase2: u64,
    /// The pivot cap of the budgeted re-solve (`0` when the probe's phase 2
    /// never pivots — then no budget cell ran).
    pub budget_cap: u64,
    /// The budgeted re-solve exhausted its cap and returned a degraded
    /// anytime solution.
    pub degraded: bool,
    /// Period of the budgeted solve (`NaN` when no budget cell ran).
    pub degraded_period: f64,
    /// Certified optimum of the same problem.
    pub optimum_period: f64,
    /// `degraded_period / optimum_period − 1` (≥ 0: anytime points are
    /// primal feasible, so they can only be worse).
    pub degraded_gap: f64,
}

/// One `(class, seed, platform)` scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosScenario {
    /// Platform class.
    pub class: PlatformClass,
    /// Base seed of the cell.
    pub seed: u64,
    /// Platform index within the cell.
    pub platform: usize,
    /// Nodes of the platform.
    pub nodes: usize,
    /// Targets of the sampled instance.
    pub targets: usize,
    /// Session panics injected and healed from the write-ahead journal
    /// (one per scenario by construction).
    pub panics_healed: u64,
    /// Ladder-phase counters: solves under injection, strikes, winning
    /// rungs, unrecovered failures (gated to zero).
    pub ladder: ChaosCounters,
    /// Budget-phase counters: probe + capped solves, degraded outcomes.
    pub budget: ChaosCounters,
    /// Per-kind results, in configuration order.
    pub kinds: Vec<ChaosKindResult>,
    /// Wall-clock milliseconds of the scenario (nondeterministic; filtered
    /// before byte comparisons).
    pub solve_ms: u64,
}

/// Aggregate accounting of a chaos batch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ChaosMeta {
    /// Scenarios run.
    pub scenarios: u64,
    /// Total wall-clock milliseconds across scenarios (nondeterministic).
    pub solve_ms: u64,
    /// Batch-wide ladder-phase counters.
    pub ladder: ChaosCounters,
    /// Batch-wide budget-phase counters.
    pub budget: ChaosCounters,
    /// Session panics injected and healed across the batch.
    pub panics_healed: u64,
}

impl ChaosMeta {
    /// Fraction of injection-phase solves that had a fault injected.
    pub fn injected_rate(&self) -> f64 {
        if self.ladder.solves > 0 {
            self.ladder.injected as f64 / self.ladder.solves as f64
        } else {
            0.0
        }
    }

    /// Fraction of budget-phase solves that returned a degraded anytime
    /// solution.
    pub fn degraded_rate(&self) -> f64 {
        if self.budget.solves > 0 {
            self.budget.degraded as f64 / self.budget.solves as f64
        } else {
            0.0
        }
    }
}

/// The result of a [`run_chaos`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosResult {
    /// The configuration that produced the result.
    pub config: ChaosBenchConfig,
    /// One scenario per `(class, seed, platform)`, in configuration order.
    pub scenarios: Vec<ChaosScenario>,
    /// Aggregate accounting.
    pub meta: ChaosMeta,
}

/// Runs the injection phase of one scenario: solve every kind, churn a
/// relay node for `churn_rounds` rounds, then inject one session panic and
/// watch the journal heal it. Chaos must already be armed process-wide.
fn run_injection_phase(
    session: &mut Session,
    config: &ChaosBenchConfig,
    rng: &mut StdRng,
) -> Vec<(HeuristicKind, f64, u64, u64, u64)> {
    let mut per_kind: Vec<(HeuristicKind, f64, u64, u64, u64)> = config
        .kinds
        .iter()
        .map(|&k| (k, f64::NAN, 0, 0, 0))
        .collect();
    fn solve_all(session: &mut Session, per_kind: &mut [(HeuristicKind, f64, u64, u64, u64)]) {
        for (kind, period, lp, hits, misses) in per_kind.iter_mut() {
            let solve = session
                .solve(*kind)
                .expect("chaos strikes are always survivable");
            *period = solve.result.period;
            *lp += solve.stats.lp_solves;
            *hits += solve.stats.warm_hits;
            *misses += solve.stats.warm_misses;
        }
    }
    solve_all(session, &mut per_kind);
    for _ in 0..config.churn_rounds {
        if let Some(node) = pick_disable_candidate(session, rng) {
            session
                .disable_node(node)
                .expect("candidate is disableable");
            solve_all(session, &mut per_kind);
            session.enable_node(node).expect("node exists");
        }
        solve_all(session, &mut per_kind);
    }
    // One injected panic: the next solve panics mid-operation with
    // deliberately corrupted template state; the session quarantines the
    // wreck, rebuilds from the write-ahead journal and retries.
    session.arm_panic(1);
    solve_all(session, &mut per_kind);
    per_kind
}

/// Runs the budget phase of one scenario: for every kind, probe the clean
/// pivot counts on a fresh session, then cap a second fresh session one
/// pivot short and record the degraded anytime solution's gap. Chaos must
/// already be disarmed process-wide (capped ladder retries could otherwise
/// exhaust the budget in phase 1).
fn run_budget_phase(session: &Session, results: &mut [ChaosKindResult]) {
    for result in results.iter_mut() {
        let mut probe = Session::new(session.instance().clone());
        let full = probe.solve(result.kind).expect("clean probe solve");
        result.probe_phase1 = full.stats.phase1_pivots;
        result.probe_phase2 = full.stats.phase2_pivots;
        result.optimum_period = full.result.period;
        result.degraded_period = f64::NAN;
        result.degraded_gap = 0.0;
        if full.stats.phase2_pivots == 0 {
            // Nothing to cap: the kind's LPs finish in phase 1 (or solve no
            // LP at all, like MCPH).
            continue;
        }
        let cap = full.stats.phase1_pivots + full.stats.phase2_pivots - 1;
        result.budget_cap = cap;
        let mut capped = Session::new(session.instance().clone());
        capped.set_budget(Some(pm_lp::SolveBudget::pivots(cap)));
        // A cold session replays the probe's exact pivot trajectory, so the
        // cap always outlasts phase 1 and the solve degrades gracefully.
        let solve = capped.solve(result.kind).expect("capped solve degrades");
        result.degraded = solve.stats.degraded_solves > 0;
        result.degraded_period = solve.result.period;
        result.degraded_gap = solve.result.period / result.optimum_period - 1.0;
    }
}

/// Runs one scenario. The caller owns the process-wide chaos state; this
/// function arms it for the injection phase and disarms it for the budget
/// phase, snapshotting the global counters around each.
fn run_scenario(
    config: &ChaosBenchConfig,
    class: PlatformClass,
    seed: u64,
    platform_index: usize,
) -> ChaosScenario {
    let started = Instant::now();
    let mut generator = if config.paper_scale {
        TiersLikeGenerator::paper_scale(class, seed + platform_index as u64)
    } else {
        TiersLikeGenerator::reduced_scale(class, seed + platform_index as u64)
    };
    let topology = generator.generate();
    let mut rng =
        StdRng::seed_from_u64(seed ^ ((platform_index as u64) << 32) ^ 0x5eed_c4a0_5bad_f00d);
    let instance = topology.sample_instance(config.density, &mut rng);
    let nodes = instance.platform.node_count();
    let targets = instance.target_count();
    let mut session = Session::new(instance);

    set_chaos(Some(ChaosConfig::all(config.chaos_seed)));
    let before_ladder = chaos_counters();
    let per_kind = run_injection_phase(&mut session, config, &mut rng);
    let ladder = counters_delta(&chaos_counters(), &before_ladder);
    let panics_healed = session.stats().panics_healed;

    set_chaos(None);
    let before_budget = chaos_counters();
    let mut kinds: Vec<ChaosKindResult> = per_kind
        .into_iter()
        .map(
            |(kind, period, lp_solves, warm_hits, warm_misses)| ChaosKindResult {
                kind,
                period,
                lp_solves,
                warm_hits,
                warm_misses,
                probe_phase1: 0,
                probe_phase2: 0,
                budget_cap: 0,
                degraded: false,
                degraded_period: f64::NAN,
                optimum_period: f64::NAN,
                degraded_gap: 0.0,
            },
        )
        .collect();
    run_budget_phase(&session, &mut kinds);
    let budget = counters_delta(&chaos_counters(), &before_budget);

    ChaosScenario {
        class,
        seed,
        platform: platform_index,
        nodes,
        targets,
        panics_healed,
        ladder,
        budget,
        kinds,
        solve_ms: started.elapsed().as_millis() as u64,
    }
}

/// Runs the chaos batch. Scenarios evolve *sequentially* (the chaos
/// configuration and its counters are process-wide, and each scenario
/// toggles them per phase); the LP solves inside each scenario still fan
/// out over the rayon pool, which is safe because injection plans are pure
/// functions of the seed and counters are commutative sums.
pub fn run_chaos(config: &ChaosBenchConfig) -> ChaosResult {
    reset_chaos_counters();
    let mut scenarios = Vec::new();
    for &class in &config.classes {
        for &seed in &config.seeds {
            for pi in 0..config.platforms {
                let scenario = run_scenario(config, class, seed, pi);
                if config.progress {
                    eprintln!(
                        "fig11: chaos scenario class={class:?} seed={seed} platform={pi} done \
                         ({} injected / {} solves, {} degraded)",
                        scenario.ladder.injected, scenario.ladder.solves, scenario.budget.degraded
                    );
                }
                scenarios.push(scenario);
            }
        }
    }
    set_chaos(None);

    let mut meta = ChaosMeta {
        scenarios: scenarios.len() as u64,
        ..ChaosMeta::default()
    };
    for scenario in &scenarios {
        meta.solve_ms += scenario.solve_ms;
        meta.panics_healed += scenario.panics_healed;
        let add = |into: &mut ChaosCounters, from: &ChaosCounters| {
            into.solves += from.solves;
            into.injected += from.injected;
            for (slot, value) in into
                .recovered_by_rung
                .iter_mut()
                .zip(from.recovered_by_rung)
            {
                *slot += value;
            }
            into.degraded += from.degraded;
            into.unrecovered += from.unrecovered;
        };
        add(&mut meta.ladder, &scenario.ladder);
        add(&mut meta.budget, &scenario.budget);
    }
    ChaosResult {
        config: config.clone(),
        scenarios,
        meta,
    }
}

/// Emits a counter block (one line, no wall times).
fn push_counters_json(out: &mut String, counters: &ChaosCounters) {
    let rungs: Vec<String> = counters
        .recovered_by_rung
        .iter()
        .map(|r| r.to_string())
        .collect();
    out.push_str(&format!(
        "{{\"solves\": {}, \"injected\": {}, \"recovered_by_rung\": [{}], \
         \"degraded\": {}, \"unrecovered\": {}}}",
        counters.solves,
        counters.injected,
        rungs.join(", "),
        counters.degraded,
        counters.unrecovered,
    ));
}

/// The chaos batch as a pretty-printed schema-v7 JSON document.
///
/// Every `"solve_ms"` field sits on its own line, so the same
/// `grep -v '"solve_ms"'` filter CI applies to the other fig11 artifacts
/// makes two chaos runs byte-comparable.
pub fn chaos_to_json(result: &ChaosResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{CHAOS_JSON_SCHEMA}\",\n"));
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"solve_ms\": {},\n", result.meta.solve_ms));
    out.push_str(&format!("    \"scenarios\": {},\n", result.meta.scenarios));
    out.push_str(&format!(
        "    \"chaos_seed\": {},\n",
        result.config.chaos_seed
    ));
    let kinds: Vec<String> = result
        .config
        .kinds
        .iter()
        .map(|&k| format!("\"{}\"", kind_key(k)))
        .collect();
    out.push_str(&format!("    \"kinds\": [{}],\n", kinds.join(", ")));
    out.push_str(&format!(
        "    \"panics_healed\": {},\n",
        result.meta.panics_healed
    ));
    out.push_str(&format!(
        "    \"injected_rate\": {},\n",
        json_f64(result.meta.injected_rate())
    ));
    out.push_str(&format!(
        "    \"degraded_rate\": {},\n",
        json_f64(result.meta.degraded_rate())
    ));
    out.push_str("    \"ladder\": ");
    push_counters_json(&mut out, &result.meta.ladder);
    out.push_str(",\n    \"budget\": ");
    push_counters_json(&mut out, &result.meta.budget);
    out.push_str("\n  },\n");
    out.push_str("  \"scenarios\": [\n");
    for (si, scenario) in result.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"class\": \"{}\",\n",
            class_key(scenario.class)
        ));
        out.push_str(&format!("      \"seed\": {},\n", scenario.seed));
        out.push_str(&format!("      \"platform\": {},\n", scenario.platform));
        out.push_str(&format!("      \"nodes\": {},\n", scenario.nodes));
        out.push_str(&format!("      \"targets\": {},\n", scenario.targets));
        out.push_str(&format!(
            "      \"panics_healed\": {},\n",
            scenario.panics_healed
        ));
        out.push_str(&format!("      \"solve_ms\": {},\n", scenario.solve_ms));
        out.push_str("      \"ladder\": ");
        push_counters_json(&mut out, &scenario.ladder);
        out.push_str(",\n      \"budget\": ");
        push_counters_json(&mut out, &scenario.budget);
        out.push_str(",\n      \"kinds\": [\n");
        for (ki, kind) in scenario.kinds.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"kind\": \"{}\", \"period\": {}, \"lp_solves\": {}, \
                 \"warm_hits\": {}, \"warm_misses\": {},\n",
                kind_key(kind.kind),
                json_f64(kind.period),
                kind.lp_solves,
                kind.warm_hits,
                kind.warm_misses,
            ));
            out.push_str(&format!(
                "         \"probe_phase1\": {}, \"probe_phase2\": {}, \"budget_cap\": {}, \
                 \"degraded\": {},\n",
                kind.probe_phase1, kind.probe_phase2, kind.budget_cap, kind.degraded,
            ));
            out.push_str(&format!(
                "         \"degraded_period\": {}, \"optimum_period\": {}, \
                 \"degraded_gap\": {}}}{}\n",
                json_f64(kind.degraded_period),
                json_f64(kind.optimum_period),
                json_f64(kind.degraded_gap),
                if ki + 1 < scenario.kinds.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("      ]\n");
        let comma = if si + 1 < result.scenarios.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ChaosBenchConfig {
        ChaosBenchConfig {
            classes: vec![PlatformClass::Small],
            seeds: vec![42],
            platforms: 1,
            churn_rounds: 1,
            ..ChaosBenchConfig::smoke()
        }
    }

    #[test]
    fn chaos_batch_recovers_every_strike_and_heals_the_panic() {
        let result = run_chaos(&tiny_config());
        assert_eq!(result.scenarios.len(), 1);
        let scenario = &result.scenarios[0];
        // The whole point of the ladder: strikes happen, failures don't.
        assert!(scenario.ladder.solves > 0);
        assert!(scenario.ladder.injected > 0, "no fault was injected");
        assert_eq!(scenario.ladder.unrecovered, 0);
        // The injected session panic was healed from the journal.
        assert_eq!(scenario.panics_healed, 1);
        // Every kind's chaos-era period matches its fault-free optimum
        // (the probe runs with chaos off on the same instance).
        for kind in &scenario.kinds {
            assert!(
                (kind.period - kind.optimum_period).abs() <= 1e-9,
                "{:?}: chaos period {} vs fault-free {}",
                kind.kind,
                kind.period,
                kind.optimum_period
            );
            if kind.budget_cap > 0 {
                assert!(
                    kind.degraded,
                    "{:?}: capped solve did not degrade",
                    kind.kind
                );
                assert!(kind.degraded_gap >= -1e-9);
            }
        }
        // At least one budget cell degraded somewhere in the batch.
        assert!(result.meta.budget.degraded > 0);
        assert_eq!(result.meta.ladder.unrecovered, 0);
    }

    #[test]
    fn chaos_json_is_deterministic_modulo_wall_time() {
        let config = tiny_config();
        let a = run_chaos(&config);
        let b = run_chaos(&config);
        let filter = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"solve_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(filter(&chaos_to_json(&a)), filter(&chaos_to_json(&b)));
        assert!(chaos_to_json(&a).contains(CHAOS_JSON_SCHEMA));
    }
}
