//! Property tests for the fault-injected replay.
//!
//! Three invariants the fault model promises by construction, checked over
//! random platforms and realized schedules:
//!
//! * a zero-loss fault model is *bit-for-bit* identical to running with no
//!   fault model at all (the null model never draws),
//! * with a fixed seed, delivery is exactly monotone non-increasing in the
//!   loss rate (draws are counter-based: the per-message uniform is
//!   independent of the rate, so raising the rate only grows the loss set),
//! * a robust realization whose every target holds two edge-disjoint
//!   per-tree delivery paths survives the *total* loss of any single
//!   schedule edge with full delivery.

use pm_core::formulations::MulticastLb;
use pm_core::realize::SteadyStateSolution;
use pm_core::{realize_robust, RobustOptions};
use pm_platform::graph::{EdgeId, NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;
use pm_sim::{FaultModel, SimulationConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// A random source-connected platform with a random target set.
fn random_instance(rng: &mut StdRng) -> MulticastInstance {
    let n = rng.gen_range(4usize..9);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for i in 1..n {
        let parent = nodes[rng.gen_range(0..i)];
        b.add_edge(parent, nodes[i], rng.gen_range(0.2..2.0))
            .unwrap();
    }
    for _ in 0..rng.gen_range(n..3 * n) {
        let a = nodes[rng.gen_range(0..n)];
        let c = nodes[rng.gen_range(0..n)];
        if a != c {
            // Duplicate edges are rejected by the builder; just skip them.
            let _ = b.add_edge(a, c, rng.gen_range(0.2..2.0));
        }
    }
    let platform = b.build().unwrap();
    let source = nodes[0];
    let mut targets: Vec<NodeId> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_range(0u32..100) < 40)
        .collect();
    if targets.is_empty() {
        targets.push(nodes[rng.gen_range(1..n)]);
    }
    MulticastInstance::new(platform, source, targets).unwrap()
}

/// A random dual-homed platform: every target is reachable through both
/// relay branches, so two edge-disjoint delivery paths exist per target.
fn dual_homed_instance(rng: &mut StdRng) -> MulticastInstance {
    let mut b = PlatformBuilder::new();
    let s = b.add_node();
    let relay_a = b.add_node();
    let relay_b = b.add_node();
    let count = rng.gen_range(1usize..4);
    let targets: Vec<NodeId> = (0..count).map(|_| b.add_node()).collect();
    b.add_edge(s, relay_a, rng.gen_range(0.5..2.0)).unwrap();
    b.add_edge(s, relay_b, rng.gen_range(0.5..2.0)).unwrap();
    for &t in &targets {
        b.add_edge(relay_a, t, rng.gen_range(0.2..1.0)).unwrap();
        b.add_edge(relay_b, t, rng.gen_range(0.2..1.0)).unwrap();
    }
    MulticastInstance::new(b.build().unwrap(), s, targets).unwrap()
}

/// The instance's lower-bound steady state, realized robustly at `f`.
fn robust_realization(
    instance: &MulticastInstance,
    f: usize,
    seed: u64,
) -> Option<pm_core::RobustRealization> {
    let lb = MulticastLb::new(instance).solve().ok()?;
    let solution =
        SteadyStateSolution::from_flow_solution(instance, &instance.targets, &lb, lb.period)?;
    let options = RobustOptions {
        disjointness: f,
        seed,
        sim: SimulationConfig {
            horizon: 60,
            warmup: 6,
            ..SimulationConfig::default()
        },
        ..RobustOptions::default()
    };
    realize_robust(instance, &solution, &options).ok()
}

/// Replays `realization`'s schedule under `faults` in redundant mode.
fn replay(
    instance: &MulticastInstance,
    realization: &pm_core::RobustRealization,
    faults: Option<FaultModel>,
) -> pm_sim::SimReport {
    let sim = Simulator::new(SimulationConfig {
        horizon: 60,
        warmup: 6,
        faults,
        redundant: true,
    });
    sim.run_schedule_on(
        &instance.platform,
        &NodeMask::full(instance.platform.node_count()),
        &realization.schedule,
        &instance.targets,
    )
    .expect("nothing is masked")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The null-model identity: loss rate 0.0 must not merely deliver
    // everything — the whole report (fault events, latencies, goodput)
    // must be bit-for-bit the fault-free one.
    #[test]
    fn zero_loss_replay_is_bit_for_bit_fault_free(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = random_instance(&mut rng);
        if let Some(realization) = robust_realization(&instance, 1, seed) {
            let fault_free = replay(&instance, &realization, None);
            let zero_loss = replay(
                &instance,
                &realization,
                Some(FaultModel::lossy(seed, 0.0)),
            );
            prop_assert_eq!(fault_free, zero_loss);
        }
    }

    // Counter-based draws make delivery exactly monotone in the loss rate
    // for a fixed seed: the uniform drawn per (edge, tree, message) does
    // not depend on the rate, so a higher rate loses a superset.
    #[test]
    fn delivery_is_monotone_non_increasing_in_loss(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = random_instance(&mut rng);
        if let Some(realization) = robust_realization(&instance, 2, seed) {
            let mut previous = f64::INFINITY;
            for loss in [0.0, 0.01, 0.05, 0.1, 0.25, 0.5] {
                let report = replay(
                    &instance,
                    &realization,
                    Some(FaultModel::lossy(seed, loss)),
                );
                prop_assert!(
                    report.delivery_ratio <= previous,
                    "loss {} delivered {} > {}",
                    loss,
                    report.delivery_ratio,
                    previous
                );
                previous = report.delivery_ratio;
            }
        }
    }

    // The tentpole guarantee: on a platform where every target is
    // dual-homed, an f = 2 realization holds two edge-disjoint per-tree
    // delivery paths, so the total loss of ANY single schedule edge still
    // delivers every message to every target.
    #[test]
    fn two_disjoint_paths_survive_any_single_edge_total_loss(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = dual_homed_instance(&mut rng);
        let realization =
            robust_realization(&instance, 2, seed).expect("dual-homed instances realize");
        prop_assert!(realization.path_disjointness >= 2);
        prop_assert!(realization.survives_single_edge_loss);
        for e in 0..instance.platform.edge_count() {
            let model = FaultModel::default().with_edge_loss(EdgeId(e as u32), 1.0);
            let report = replay(&instance, &realization, Some(model));
            prop_assert!(
                report.delivery_ratio == 1.0,
                "killing edge {} broke delivery ({})",
                e,
                report.delivery_ratio
            );
        }
    }
}
