//! One-call validation of a weighted tree set: scale, schedule, replay.
//!
//! Every consumer that wants to *prove* a tree combination works — the
//! examples, the end-to-end tests, the `fig11 --realize` stage — used to
//! repeat the same four steps: scale the set so the bottleneck port is
//! saturated, build the periodic schedule through the weighted edge
//! coloring, check its structural invariants, and replay it in the
//! simulator. [`validate_tree_set`] is that snippet, once.

use crate::simulator::{SimReport, SimulationConfig, Simulator};
use pm_platform::graph::Platform;
use pm_sched::schedule::{PeriodicSchedule, ScheduleError};
use pm_sched::tree::WeightedTreeSet;

/// The artifacts of a successful tree-set validation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSetValidation {
    /// The input set scaled so its most loaded port is exactly saturated.
    pub scaled: WeightedTreeSet,
    /// Throughput of the scaled set (multicasts per time-unit).
    pub throughput: f64,
    /// The unit-period schedule realizing the scaled set.
    pub schedule: PeriodicSchedule,
    /// The simulator's replay of the schedule.
    pub report: SimReport,
}

/// Scales `trees` to saturation, builds the unit-period schedule through the
/// weighted König coloring, validates it, and replays it in the simulator.
///
/// On success the returned [`TreeSetValidation`] carries a schedule with zero
/// one-port violations whose simulated throughput equals the scaled set's
/// analytical throughput; any infeasibility surfaces as a [`ScheduleError`].
pub fn validate_tree_set(
    platform: &Platform,
    trees: &WeightedTreeSet,
    config: SimulationConfig,
) -> Result<TreeSetValidation, ScheduleError> {
    let (scaled, throughput) = trees.scaled_to_feasible(platform);
    let schedule = PeriodicSchedule::from_weighted_trees(platform, &scaled, 1.0)?;
    schedule.validate(platform)?;
    let report = Simulator::new(config).run_schedule(platform, &schedule);
    Ok(TreeSetValidation {
        scaled,
        throughput,
        schedule,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::{NodeId, PlatformBuilder};
    use pm_platform::instances::MulticastInstance;
    use pm_sched::tree::MulticastTree;

    #[test]
    fn validation_reports_the_analytical_throughput() {
        let mut b = PlatformBuilder::new();
        let s = b.add_node();
        let a = b.add_node();
        let t = b.add_node();
        b.add_edge(s, a, 0.5).unwrap();
        b.add_edge(a, t, 0.5).unwrap();
        let g = b.build().unwrap();
        let inst = MulticastInstance::new(g.clone(), s, vec![t]).unwrap();
        let e = |x: NodeId, y: NodeId| g.find_edge(x, y).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(s, a), e(a, t)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 0.1).unwrap(); // far from saturation
        let validation = validate_tree_set(&g, &set, SimulationConfig::default()).unwrap();
        // Saturated: one send port busy 0.5 per message -> throughput 2.
        assert!((validation.throughput - 2.0).abs() < 1e-9);
        assert_eq!(validation.report.one_port_violations, 0);
        assert!((validation.report.throughput - validation.throughput).abs() < 1e-9);
    }
}
