//! # pm-sim
//!
//! A discrete-event simulator for the one-port model, used to *validate* the
//! schedules and heuristics of the workspace rather than trust their
//! analytical throughput:
//!
//! * [`simulator::Simulator::run_schedule`] replays a periodic schedule for a
//!   number of periods, enforcing the one-port constraints at runtime and
//!   measuring the achieved throughput and port utilizations,
//! * [`simulator::Simulator::run_tree_pipeline`] simulates the greedy
//!   store-and-forward pipelining of a series of multicasts along a single
//!   multicast tree, and measures the steady-state throughput actually
//!   reached (which converges to `1 / tree.period()`),
//! * [`validate::validate_tree_set`] runs the whole
//!   scale → schedule → validate → replay pipeline on a weighted tree set in
//!   one call (the shared tail of the realization pipeline).

pub mod fault;
pub mod simulator;
pub mod validate;

pub use fault::{CrashEvent, FaultModel};
pub use simulator::{
    CommodityLane, FaultCause, FaultEvent, SimError, SimReport, SimulationConfig, Simulator,
};
pub use validate::{validate_tree_set, TreeSetValidation};
