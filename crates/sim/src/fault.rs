//! Seeded, deterministic fault injection for the one-port simulator.
//!
//! A [`FaultModel`] describes *unreliable* platform behaviour layered on top
//! of a replay: per-edge i.i.d. message loss and scheduled node
//! crash/recovery windows. Two design constraints shape the implementation:
//!
//! * **Byte determinism across runs and thread counts.** Loss draws are not
//!   taken from a stateful RNG (whose consumption order would depend on
//!   event interleaving) but from a pure counter-based hash: the draw for
//!   message `msg` of tree `tree` on edge `edge` is
//!   `u = splitmix64(seed ⊕ edge ⊕ tree ⊕ msg) / 2⁶⁴`, lost iff
//!   `u < loss(edge)`. The same `(seed, edge, tree, msg)` always yields the
//!   same verdict, whatever order the simulator visits transfers in.
//! * **Exact monotonicity in the loss rate.** Because the verdict is a
//!   threshold test on a rate-independent uniform draw, raising the loss
//!   probability can only turn deliveries into losses, never the reverse —
//!   the property the `fault_properties` proptests pin down.
//!
//! A zero model (`loss = 0`, no overrides, no crashes) never fires: replays
//! under it are bit-for-bit identical to fault-free replays.

use pm_platform::graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// A scheduled node outage: the node is down during `[down_at, up_at)` (in
/// absolute simulation time) and functional outside the window. Messages
/// that must be sent or received by a down node are lost (no retransmit —
/// robustness comes from redundant trees, not retries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// The crashing node.
    pub node: NodeId,
    /// Start of the outage (inclusive).
    pub down_at: f64,
    /// End of the outage (exclusive); `f64::INFINITY` for a permanent crash.
    pub up_at: f64,
}

/// A seeded, deterministic fault model: per-edge i.i.d. message loss plus
/// scheduled node crash/recovery windows. See the [module docs](self) for
/// the determinism protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed of the counter-based loss draws.
    pub seed: u64,
    /// Base per-edge message loss probability in `[0, 1]`, applied to every
    /// edge without an override.
    pub loss: f64,
    /// Per-edge overrides of the loss probability (e.g. one edge at `1.0`
    /// models that link's total loss).
    pub edge_loss: Vec<(EdgeId, f64)>,
    /// Scheduled node outages.
    pub crashes: Vec<CrashEvent>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            seed: 0,
            loss: 0.0,
            edge_loss: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

/// SplitMix64: a full-period 64-bit permutation mixer, used as the pure
/// counter-based hash behind the loss draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultModel {
    /// A model with uniform i.i.d. loss probability `loss` on every edge.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        FaultModel {
            seed,
            loss,
            ..FaultModel::default()
        }
    }

    /// Adds (or replaces) a per-edge loss override.
    pub fn with_edge_loss(mut self, edge: EdgeId, loss: f64) -> Self {
        if let Some(slot) = self.edge_loss.iter_mut().find(|(e, _)| *e == edge) {
            slot.1 = loss;
        } else {
            self.edge_loss.push((edge, loss));
        }
        self
    }

    /// Adds a scheduled node outage over `[down_at, up_at)`.
    pub fn with_crash(mut self, node: NodeId, down_at: f64, up_at: f64) -> Self {
        self.crashes.push(CrashEvent {
            node,
            down_at,
            up_at,
        });
        self
    }

    /// Whether the model can never fire (no loss anywhere, no crashes):
    /// replays under such a model are bit-for-bit fault-free.
    pub fn is_null(&self) -> bool {
        self.loss <= 0.0 && self.edge_loss.iter().all(|&(_, p)| p <= 0.0) && self.crashes.is_empty()
    }

    /// The loss probability of `edge` (override, else the base rate).
    pub fn loss_on(&self, edge: EdgeId) -> f64 {
        self.edge_loss
            .iter()
            .find(|(e, _)| *e == edge)
            .map(|&(_, p)| p)
            .unwrap_or(self.loss)
    }

    /// Whether `node` is down at absolute time `t`.
    pub fn node_down_at(&self, node: NodeId, t: f64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && t >= c.down_at && t < c.up_at)
    }

    /// The deterministic loss verdict for message `msg` of tree `tree`
    /// crossing `edge`: a threshold test on the counter-based uniform draw
    /// (see the [module docs](self)).
    pub fn drop_message(&self, edge: EdgeId, tree: usize, msg: usize) -> bool {
        let p = self.loss_on(edge);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut key = splitmix64(self.seed ^ 0x7fb5_d329_728e_a185);
        key = splitmix64(key ^ u64::from(edge.0));
        key = splitmix64(key ^ (tree as u64).wrapping_shl(32));
        key = splitmix64(key ^ msg as u64);
        // 53 high bits -> uniform f64 in [0, 1).
        let u = (key >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_never_fires() {
        let model = FaultModel::lossy(7, 0.0);
        assert!(model.is_null());
        for msg in 0..1000 {
            assert!(!model.drop_message(EdgeId(3), 1, msg));
        }
    }

    #[test]
    fn total_loss_always_fires_and_draws_are_deterministic() {
        let dead = FaultModel::lossy(7, 0.4).with_edge_loss(EdgeId(2), 1.0);
        assert!(dead.drop_message(EdgeId(2), 0, 123));
        let a = FaultModel::lossy(42, 0.3);
        let b = FaultModel::lossy(42, 0.3);
        for msg in 0..200 {
            assert_eq!(
                a.drop_message(EdgeId(5), 2, msg),
                b.drop_message(EdgeId(5), 2, msg)
            );
        }
    }

    #[test]
    fn loss_rate_is_monotone_per_draw() {
        // The threshold test guarantees per-draw monotonicity: any message
        // lost at p1 is lost at every p2 > p1.
        let lo = FaultModel::lossy(9, 0.1);
        let hi = FaultModel::lossy(9, 0.35);
        for msg in 0..500 {
            if lo.drop_message(EdgeId(1), 0, msg) {
                assert!(hi.drop_message(EdgeId(1), 0, msg));
            }
        }
    }

    #[test]
    fn empirical_loss_rate_tracks_the_probability() {
        let model = FaultModel::lossy(1234, 0.25);
        let n = 20_000;
        let lost = (0..n)
            .filter(|&msg| model.drop_message(EdgeId(0), 0, msg))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn crash_windows_are_half_open() {
        let model = FaultModel::default().with_crash(NodeId(3), 2.0, 5.0);
        assert!(!model.node_down_at(NodeId(3), 1.999));
        assert!(model.node_down_at(NodeId(3), 2.0));
        assert!(model.node_down_at(NodeId(3), 4.999));
        assert!(!model.node_down_at(NodeId(3), 5.0));
        assert!(!model.node_down_at(NodeId(2), 3.0));
    }
}
