//! Discrete-event simulation of pipelined multicasts under the one-port
//! model, with optional seeded fault injection (message loss, node crashes).

use crate::fault::FaultModel;
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::mask::NodeMask;
use pm_sched::load::OnePortLoads;
use pm_sched::schedule::PeriodicSchedule;
use pm_sched::tree::MulticastTree;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// One commodity's lane inside a multi-commodity super-period schedule:
/// the transfer tags its trees occupy, how many of its messages complete
/// per super-period, and its own delivery target set. Consumed by
/// [`Simulator::verify_commodity_rates`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommodityLane {
    /// Half-open range of transfer tags (`Transfer::tree`) owned by the
    /// commodity inside the shared schedule.
    pub tags: std::ops::Range<usize>,
    /// Messages of this commodity completed per super-period (its demand
    /// share of the joint packing).
    pub multicasts_per_period: f64,
    /// The commodity's own target set (never inferred: different
    /// commodities cover different nodes).
    pub targets: Vec<NodeId>,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of steady-state periods to replay (schedule mode) or number of
    /// messages to inject (tree-pipeline mode).
    pub horizon: usize,
    /// Number of initial periods / messages ignored when measuring the
    /// steady-state throughput (warm-up of the pipeline).
    pub warmup: usize,
    /// Optional fault model: seeded per-edge message loss and scheduled
    /// node outages. `None` behaves exactly like a zero model (and replays
    /// are bit-for-bit identical between the two).
    pub faults: Option<FaultModel>,
    /// Redundant delivery mode for schedule replays: every tree of the
    /// schedule carries a copy of every multicast, and a target counts as
    /// served when *any* copy arrives (the delivery semantics of the robust
    /// redundant realizations). When `false`, multicasts are spread over
    /// the trees in proportion to their scheduled rates.
    pub redundant: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            horizon: 200,
            warmup: 20,
            faults: None,
            redundant: false,
        }
    }
}

/// One message loss materialized during a replay, for the report's fault
/// event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute simulation time of the failed edge crossing.
    pub time: f64,
    /// Index of the lost message.
    pub msg: usize,
    /// Tree (schedule tag) the copy was travelling on.
    pub tree: usize,
    /// The edge the message failed to cross.
    pub edge: EdgeId,
    /// What killed the crossing.
    pub cause: FaultCause,
}

/// The cause of a [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// An i.i.d. message-loss draw fired on the edge.
    Loss,
    /// The sender or the receiver was crashed at crossing time.
    Crash,
}

/// Structured replay errors (as opposed to silently degraded reports).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The schedule references a transfer whose endpoint is disabled by the
    /// active [`NodeMask`]: the schedule is stale with respect to the
    /// platform state and must be re-realized, not replayed.
    MaskedTransfer {
        /// Index of the offending slot.
        slot: usize,
        /// Sender of the offending transfer.
        src: NodeId,
        /// Receiver of the offending transfer.
        dst: NodeId,
        /// The disabled endpoint that invalidates the transfer.
        disabled: NodeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MaskedTransfer {
                slot,
                src,
                dst,
                disabled,
            } => write!(
                f,
                "slot {slot} transfer {src} -> {dst} uses disabled node {disabled}; \
                 the schedule is stale and must be re-realized"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total simulated time.
    pub total_time: f64,
    /// Number of multicasts offered by the schedule over the horizon (the
    /// scheduled rate; see [`SimReport::goodput`] for the delivered side).
    pub completed_multicasts: f64,
    /// Scheduled steady-state throughput (multicasts per time-unit, measured
    /// after the warm-up).
    pub throughput: f64,
    /// Scheduled steady-state period (`1 / throughput`).
    pub period: f64,
    /// Per-node send/receive busy time divided by the total time.
    pub utilization: OnePortLoads,
    /// Number of one-port violations detected (always 0 for valid schedules).
    pub one_port_violations: usize,
    /// Fraction of `(message, target)` pairs delivered over the replay
    /// (1.0 on fault-free runs).
    pub delivery_ratio: f64,
    /// Per-target delivery ratios, `(target, delivered fraction)` pairs.
    pub target_delivery: Vec<(NodeId, f64)>,
    /// Fully-delivered multicasts (every target served) per time-unit —
    /// equals the throughput on fault-free runs, degrades under faults.
    pub goodput: f64,
    /// Warm-up fill latency: completion time of the earliest fully
    /// delivered multicast, measured directly from the replayed schedule
    /// (the pipeline-fill quantity; infinite when nothing is delivered).
    pub fill_latency: f64,
    /// Time of the last delivery of the replay (0 when nothing delivers).
    pub makespan: f64,
    /// The materialized message losses, in deterministic replay order.
    pub fault_events: Vec<FaultEvent>,
}

/// One reconstructed multicast tree of a replayed schedule: the pipelined
/// structure behind the schedule's tree-tagged transfers.
#[derive(Debug, Clone)]
struct ReplayTree {
    /// The schedule tag of the tree.
    tag: usize,
    /// Edges in BFS order from the root: `(edge, src, dst)`.
    edges: Vec<(EdgeId, NodeId, NodeId)>,
    /// Steady-state arrival offset of every node (indexed by node id;
    /// `f64::INFINITY` when the tree does not cover the node): the time
    /// within the pipeline at which a message injected at offset 0 becomes
    /// available at the node, following the schedule's slot placement
    /// period by period.
    arrival: Vec<f64>,
    /// The tree's share of the scheduled messages (its rate divided by the
    /// total rate), used by the round-robin message assignment.
    share: f64,
}

/// The discrete-event simulator.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    /// Simulation parameters.
    pub config: SimulationConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimulationConfig) -> Self {
        Simulator { config }
    }

    /// Replays a periodic schedule for `config.horizon` periods on a fully
    /// enabled platform, inferring the delivery targets as the nodes covered
    /// by *every* tree of the schedule (for tree-shaped schedules this is
    /// the instance's target set plus any shared relays).
    ///
    /// Every slot of every period is checked against the one-port model (a
    /// node must not appear twice as a sender or twice as a receiver within a
    /// slot); violations are counted in the report. See
    /// [`Simulator::run_schedule_on`] for masked platforms and explicit
    /// targets.
    pub fn run_schedule(&self, platform: &Platform, schedule: &PeriodicSchedule) -> SimReport {
        let mask = NodeMask::full(platform.node_count());
        self.run_schedule_on(platform, &mask, schedule, &[])
            .expect("a full mask disables nothing")
    }

    /// Replays a periodic schedule under a node mask and an explicit target
    /// set, with whatever fault model the configuration carries.
    ///
    /// Errors with [`SimError::MaskedTransfer`] when the schedule references
    /// a transfer through a node the mask disables — a stale schedule must
    /// be re-realized, not silently replayed at degraded throughput.
    ///
    /// An empty `targets` slice infers the targets as the nodes covered by
    /// every tree of the schedule. The scheduled-rate fields (`throughput`,
    /// `period`, `completed_multicasts`, `utilization`) are analytic and
    /// fault-independent; the delivery fields (`delivery_ratio`, `goodput`,
    /// `fill_latency`, `makespan`, `fault_events`) come from a per-message
    /// replay of the schedule's reconstructed trees. Schedules that are not
    /// tree-shaped (a tag whose transfers do not form a tree over platform
    /// edges) replay analytically with a perfect-delivery verdict.
    pub fn run_schedule_on(
        &self,
        platform: &Platform,
        mask: &NodeMask,
        schedule: &PeriodicSchedule,
        targets: &[NodeId],
    ) -> Result<SimReport, SimError> {
        let periods = self.config.horizon.max(1);
        let mut busy = OnePortLoads::new(platform.node_count());
        let mut violations = 0usize;
        for (slot_idx, slot) in schedule.slots.iter().enumerate() {
            let mut senders: Vec<NodeId> = Vec::new();
            let mut receivers: Vec<NodeId> = Vec::new();
            for t in &slot.transfers {
                for endpoint in [t.src, t.dst] {
                    if !mask.contains(endpoint) {
                        return Err(SimError::MaskedTransfer {
                            slot: slot_idx,
                            src: t.src,
                            dst: t.dst,
                            disabled: endpoint,
                        });
                    }
                }
                if senders.contains(&t.src) || receivers.contains(&t.dst) {
                    violations += 1;
                }
                senders.push(t.src);
                receivers.push(t.dst);
                busy.add_transfer(t.src, t.dst, t.duration);
            }
        }
        // Busy time accumulated over one period; utilization = busy / period.
        let total_time = schedule.period * periods as f64;
        let utilization = busy.scaled(1.0 / schedule.period);
        let completed = schedule.multicasts_per_period * periods as f64;
        let throughput = completed / total_time;
        let mut report = SimReport {
            total_time,
            completed_multicasts: completed,
            throughput,
            period: if throughput > 0.0 {
                1.0 / throughput
            } else {
                f64::INFINITY
            },
            utilization,
            one_port_violations: violations,
            delivery_ratio: 1.0,
            target_delivery: targets.iter().map(|&t| (t, 1.0)).collect(),
            goodput: throughput,
            fill_latency: 0.0,
            makespan: total_time,
            fault_events: Vec::new(),
        };
        self.replay_deliveries(platform, schedule, targets, periods, &mut report);
        Ok(report)
    }

    /// Verifies every commodity of a multi-commodity *super-period* schedule
    /// against its own target set: each lane's tag-restricted sub-schedule
    /// (see `PeriodicSchedule::restricted_to_tags`) is replayed on the fully
    /// enabled platform with the lane's targets, so the returned reports
    /// carry the lane's scheduled rate (`throughput`), its per-message
    /// delivery outcome (`delivery_ratio`, `goodput`) and its one-port
    /// verdict — the end-to-end evidence that the commodity sustains its
    /// rate inside the shared period.
    pub fn verify_commodity_rates(
        &self,
        platform: &Platform,
        schedule: &PeriodicSchedule,
        lanes: &[CommodityLane],
    ) -> Vec<SimReport> {
        let mask = NodeMask::full(platform.node_count());
        lanes
            .iter()
            .map(|lane| {
                let sub =
                    schedule.restricted_to_tags(lane.tags.clone(), lane.multicasts_per_period);
                self.run_schedule_on(platform, &mask, &sub, &lane.targets)
                    .expect("a full mask disables nothing")
            })
            .collect()
    }

    /// The per-message delivery replay behind [`Simulator::run_schedule_on`]:
    /// reconstructs the schedule's trees, spreads (or replicates) the
    /// offered multicasts over them, and walks every copy down its tree
    /// under the configured fault model. Leaves the report's analytic
    /// fields untouched; falls back to the perfect-delivery defaults when
    /// the schedule is not tree-shaped.
    fn replay_deliveries(
        &self,
        platform: &Platform,
        schedule: &PeriodicSchedule,
        targets: &[NodeId],
        periods: usize,
        report: &mut SimReport,
    ) {
        let Some(trees) = reconstruct_trees(platform, schedule) else {
            return;
        };
        if trees.is_empty() {
            return;
        }
        let n = platform.node_count();
        // Inferred targets: nodes covered by every tree (minus roots).
        let inferred: Vec<NodeId>;
        let targets = if targets.is_empty() {
            inferred = (0..n as u32)
                .map(NodeId)
                .filter(|v| {
                    trees
                        .iter()
                        .all(|t| t.arrival[v.index()].is_finite() && t.arrival[v.index()] > 0.0)
                })
                .collect();
            &inferred[..]
        } else {
            targets
        };
        if targets.is_empty() {
            return;
        }
        let messages = (schedule.multicasts_per_period * periods as f64).round() as usize;
        if messages == 0 || report.throughput <= 0.0 {
            return;
        }
        let inject_gap = 1.0 / report.throughput;
        let null = FaultModel::default();
        let fault = self.config.faults.as_ref().unwrap_or(&null);

        let mut delivered_per_target = vec![0usize; targets.len()];
        let target_index: BTreeMap<u32, usize> =
            targets.iter().enumerate().map(|(i, t)| (t.0, i)).collect();
        let mut delivered_pairs = 0usize;
        let mut full_deliveries = 0usize;
        let mut fill_latency = f64::INFINITY;
        let mut makespan = 0.0f64;
        let mut events = Vec::new();
        // Round-robin credits for the non-redundant assignment.
        let mut credits = vec![0.0f64; trees.len()];
        let mut reached = vec![false; n];
        // Best delivery time per target for the current message.
        let mut best = vec![f64::INFINITY; targets.len()];

        for msg in 0..messages {
            let inject = msg as f64 * inject_gap;
            let carriers: Vec<usize> = if self.config.redundant {
                (0..trees.len()).collect()
            } else {
                for (k, tree) in trees.iter().enumerate() {
                    credits[k] += tree.share;
                }
                let chosen = credits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(Ordering::Equal))
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                credits[chosen] -= 1.0;
                vec![chosen]
            };
            best.iter_mut().for_each(|b| *b = f64::INFINITY);
            for &k in &carriers {
                let tree = &trees[k];
                for item in reached.iter_mut() {
                    *item = false;
                }
                if let Some(&(_, root, _)) = tree.edges.first() {
                    reached[root.index()] = true;
                }
                for &(edge, src, dst) in &tree.edges {
                    if !reached[src.index()] {
                        continue;
                    }
                    let cross = inject + tree.arrival[dst.index()];
                    let crashed = fault.node_down_at(src, cross) || fault.node_down_at(dst, cross);
                    let lost = fault.drop_message(edge, tree.tag, msg);
                    if crashed || lost {
                        events.push(FaultEvent {
                            time: cross,
                            msg,
                            tree: tree.tag,
                            edge,
                            cause: if crashed {
                                FaultCause::Crash
                            } else {
                                FaultCause::Loss
                            },
                        });
                        continue;
                    }
                    reached[dst.index()] = true;
                    if let Some(&ti) = target_index.get(&dst.0) {
                        if cross < best[ti] {
                            best[ti] = cross;
                        }
                    }
                }
            }
            let mut full = true;
            let mut completion = 0.0f64;
            for (ti, &b) in best.iter().enumerate() {
                if b.is_finite() {
                    delivered_pairs += 1;
                    delivered_per_target[ti] += 1;
                    if b > makespan {
                        makespan = b;
                    }
                    if b > completion {
                        completion = b;
                    }
                } else {
                    full = false;
                }
            }
            if full {
                full_deliveries += 1;
                if completion < fill_latency {
                    fill_latency = completion;
                }
            }
        }

        report.delivery_ratio = delivered_pairs as f64 / (messages * targets.len()) as f64;
        report.target_delivery = targets
            .iter()
            .zip(&delivered_per_target)
            .map(|(&t, &d)| (t, d as f64 / messages as f64))
            .collect();
        report.goodput = full_deliveries as f64 / report.total_time;
        report.fill_latency = fill_latency;
        report.makespan = makespan;
        report.fault_events = events;
    }

    /// The *fill makespan* of a single message multicast down `tree`: the
    /// time from an idle start until every target has received it, under
    /// the one-port store-and-forward model (a horizon-1
    /// [`Simulator::run_tree_pipeline`]). This is the pipeline-depth
    /// quantity behind transition costs on drifting platforms: it bounds
    /// both how long the in-flight messages of an abandoned schedule take
    /// to drain and how long a freshly installed schedule runs before its
    /// first delivery. An associated function (no receiver): a single
    /// message's makespan is independent of any horizon/warmup
    /// configuration.
    pub fn tree_fill_makespan(
        platform: &Platform,
        tree: &MulticastTree,
        targets: &[NodeId],
    ) -> f64 {
        let one_shot = Simulator::new(SimulationConfig {
            horizon: 1,
            warmup: 0,
            ..SimulationConfig::default()
        });
        one_shot
            .run_tree_pipeline(platform, tree, targets)
            .total_time
    }

    /// Simulates the natural store-and-forward pipelining of a series of
    /// multicasts along a single multicast tree.
    ///
    /// The source injects `config.horizon` messages. Every node forwards each
    /// received message to its children in tree order, one child at a time
    /// (one-port in emission), and receives at most one message at a time
    /// (one-port in reception, enforced by construction since a node has a
    /// single parent). The measured steady-state throughput converges to the
    /// analytical `1 / tree.period()` of `pm-sched`.
    ///
    /// Under a fault model, a transfer whose loss draw fires (or whose
    /// endpoint is crashed at transfer time) is lost together with the
    /// whole subtree's copy of that message; the sender's port is still
    /// occupied for the transfer's duration (no retransmit).
    pub fn run_tree_pipeline(
        &self,
        platform: &Platform,
        tree: &MulticastTree,
        targets: &[NodeId],
    ) -> SimReport {
        let num_messages = self.config.horizon.max(1);
        let warmup = self.config.warmup.min(num_messages.saturating_sub(1));
        let n = platform.node_count();
        let null = FaultModel::default();
        let fault = self.config.faults.as_ref().unwrap_or(&null);

        // children[v] = tree edges leaving v, in a fixed order.
        let mut children: Vec<Vec<(NodeId, f64, EdgeId)>> = vec![Vec::new(); n];
        for &e in tree.edges() {
            let edge = platform.edge(e);
            children[edge.src.index()].push((edge.dst, edge.cost, e));
        }

        // Event-driven simulation. Each node keeps a FIFO of messages it
        // still has to forward; its send port serializes the transfers.
        #[derive(Debug, PartialEq)]
        struct Event {
            time: f64,
            kind: EventKind,
        }
        #[derive(Debug, PartialEq)]
        enum EventKind {
            /// `node` receives message `msg` (it may start forwarding it).
            Arrival { node: NodeId, msg: usize },
            /// The send port of `node` becomes free.
            SendFree { node: NodeId },
        }
        impl Eq for Event {}
        impl PartialOrd for Event {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Event {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .time
                    .partial_cmp(&self.time)
                    .expect("times are finite")
            }
        }

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        // Per node: queue of (message, next child index to serve).
        let mut queues: Vec<std::collections::VecDeque<(usize, usize)>> =
            vec![std::collections::VecDeque::new(); n];
        let mut send_busy = vec![false; n];
        let mut busy = OnePortLoads::new(n);
        // Delivery bookkeeping.
        let mut received_count = vec![0usize; num_messages];
        let mut completion_time = vec![f64::NAN; num_messages];
        let mut fault_events = Vec::new();
        let needed = targets.len();
        let target_mask: Vec<Option<usize>> = {
            let mut mask = vec![None; n];
            for (i, &t) in targets.iter().enumerate() {
                mask[t.index()] = Some(i);
            }
            mask
        };
        let mut delivered_per_target = vec![0usize; needed];
        let mut delivered_pairs = 0usize;
        let mut makespan = 0.0f64;

        // The source holds every message from the start: its queue is
        // pre-filled in message order and its send port starts working at 0.
        // (Going through Arrival events for the source would let the event
        // queue reorder same-time arrivals and scramble the message order.)
        if children[tree.source.index()].is_empty() {
            // Degenerate: the source has no children in the tree; nothing to do.
        } else {
            for msg in 0..num_messages {
                queues[tree.source.index()].push_back((msg, 0));
            }
            send_busy[tree.source.index()] = true;
            heap.push(Event {
                time: 0.0,
                kind: EventKind::SendFree { node: tree.source },
            });
        }

        let mut now = 0.0;
        let mut completed = 0usize;
        while let Some(event) = heap.pop() {
            now = event.time;
            match event.kind {
                EventKind::Arrival { node, msg } => {
                    if let Some(ti) = target_mask[node.index()] {
                        delivered_pairs += 1;
                        delivered_per_target[ti] += 1;
                        if now > makespan {
                            makespan = now;
                        }
                        received_count[msg] += 1;
                        if received_count[msg] == needed {
                            completion_time[msg] = now;
                            completed += 1;
                        }
                    }
                    if !children[node.index()].is_empty() {
                        queues[node.index()].push_back((msg, 0));
                        if !send_busy[node.index()] {
                            heap.push(Event {
                                time: now,
                                kind: EventKind::SendFree { node },
                            });
                            send_busy[node.index()] = true;
                        }
                    }
                }
                EventKind::SendFree { node } => {
                    // Pick the next (message, child) transfer for this node.
                    match queues[node.index()].pop_front() {
                        None => {
                            send_busy[node.index()] = false;
                        }
                        Some((msg, child_idx)) => {
                            let (child, cost, edge) = children[node.index()][child_idx];
                            busy.add_transfer(node, child, cost);
                            let done = now + cost;
                            let crashed =
                                fault.node_down_at(node, now) || fault.node_down_at(child, done);
                            let lost = fault.drop_message(edge, 0, msg);
                            if crashed || lost {
                                fault_events.push(FaultEvent {
                                    time: done,
                                    msg,
                                    tree: 0,
                                    edge,
                                    cause: if crashed {
                                        FaultCause::Crash
                                    } else {
                                        FaultCause::Loss
                                    },
                                });
                            } else {
                                heap.push(Event {
                                    time: done,
                                    kind: EventKind::Arrival { node: child, msg },
                                });
                            }
                            // Re-queue the message if more children remain.
                            if child_idx + 1 < children[node.index()].len() {
                                queues[node.index()].push_front((msg, child_idx + 1));
                            }
                            heap.push(Event {
                                time: done,
                                kind: EventKind::SendFree { node },
                            });
                        }
                    }
                }
            }
        }

        let total_time = now;
        // Steady-state throughput measured between the warmup-th completion
        // and the last completion (in completion-time order).
        let mut completions: Vec<f64> = completion_time
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .collect();
        completions.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (throughput, period) = if completions.len() > warmup + 1 {
            let t0 = completions[warmup];
            let t1 = *completions.last().expect("non-empty");
            let count = (completions.len() - 1 - warmup) as f64;
            if t1 > t0 {
                (count / (t1 - t0), (t1 - t0) / count)
            } else {
                (f64::INFINITY, 0.0)
            }
        } else {
            (0.0, f64::INFINITY)
        };
        let utilization = if total_time > 0.0 {
            busy.scaled(1.0 / total_time)
        } else {
            OnePortLoads::new(n)
        };
        let pairs = num_messages * needed;
        let delivery_ratio = if pairs > 0 {
            delivered_pairs as f64 / pairs as f64
        } else {
            1.0
        };
        let goodput = if total_time > 0.0 {
            completed as f64 / total_time
        } else {
            0.0
        };

        SimReport {
            total_time,
            completed_multicasts: completed as f64,
            throughput,
            period,
            utilization,
            one_port_violations: 0,
            delivery_ratio,
            target_delivery: targets
                .iter()
                .zip(&delivered_per_target)
                .map(|(&t, &d)| (t, d as f64 / num_messages as f64))
                .collect(),
            goodput,
            fill_latency: completions.first().copied().unwrap_or(f64::INFINITY),
            makespan,
            fault_events,
        }
    }
}

/// Reconstructs the multicast trees of a schedule from its tree-tagged
/// transfers, together with each node's steady-state arrival offset: the
/// edge coloring may split one tree edge's occupation across several slots,
/// so the pieces are re-merged by `(tree, src, dst)` and an edge's crossing
/// completes at its last piece's end within the period.
///
/// Returns `None` when some tag's transfers do not form a tree over
/// platform edges (duplicate receiver, no unique root, disconnected, or a
/// transfer that is not a platform edge) — such schedules replay
/// analytically without per-message delivery tracking.
fn reconstruct_trees(platform: &Platform, schedule: &PeriodicSchedule) -> Option<Vec<ReplayTree>> {
    let period = schedule.period;
    if !(period.is_finite() && period > 0.0) {
        return None;
    }
    // (src, dst) -> (total duration, completion offset) within one tag.
    type TagEdges = BTreeMap<(u32, u32), (f64, f64)>;
    let mut by_tag: BTreeMap<usize, TagEdges> = BTreeMap::new();
    for slot in &schedule.slots {
        for t in &slot.transfers {
            let entry = by_tag
                .entry(t.tree)
                .or_default()
                .entry((t.src.0, t.dst.0))
                .or_insert((0.0, 0.0));
            entry.0 += t.duration;
            let end = slot.offset + t.duration;
            if end > entry.1 {
                entry.1 = end;
            }
        }
    }
    if by_tag.is_empty() {
        return None;
    }
    let n = platform.node_count();
    let mut trees = Vec::with_capacity(by_tag.len());
    let mut rates = Vec::with_capacity(by_tag.len());
    for (&tag, edges) in &by_tag {
        // Tree shape: every receiver has exactly one incoming transfer.
        let mut parent: Vec<Option<(NodeId, EdgeId, f64, f64)>> = vec![None; n];
        let mut is_node = vec![false; n];
        for (&(src, dst), &(duration, completion)) in edges {
            let (src, dst) = (NodeId(src), NodeId(dst));
            if src.index() >= n || dst.index() >= n {
                return None;
            }
            let edge = platform.find_edge(src, dst)?;
            if parent[dst.index()].is_some() {
                return None; // two parents: not a tree
            }
            parent[dst.index()] = Some((src, edge, duration, completion));
            is_node[src.index()] = true;
            is_node[dst.index()] = true;
        }
        // Unique root: a node of the tree with no parent.
        let mut roots = (0..n)
            .filter(|&v| is_node[v] && parent[v].is_none())
            .map(|v| NodeId(v as u32));
        let root = roots.next()?;
        if roots.next().is_some() {
            return None;
        }
        // BFS from the root, computing the steady-state arrival offsets: a
        // message available at `src` at offset `a` crosses the edge in the
        // first period whose completion offset is not earlier than `a`.
        let mut arrival = vec![f64::INFINITY; n];
        arrival[root.index()] = 0.0;
        let mut order = Vec::with_capacity(edges.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut rate = 0.0f64;
        let mut rated_edges = 0usize;
        while let Some(u) = queue.pop_front() {
            // Children of u, in ascending node order (BTreeMap iteration).
            for v in 0..n {
                let Some((src, edge, duration, completion)) = parent[v] else {
                    continue;
                };
                if src != u || arrival[v].is_finite() {
                    continue;
                }
                let a = arrival[u.index()];
                let skipped = if a > completion + 1e-12 {
                    ((a - completion) / period).ceil().max(0.0)
                } else {
                    0.0
                };
                arrival[v] = completion + skipped * period;
                order.push((edge, src, NodeId(v as u32)));
                let cost = platform.edge(edge).cost;
                if cost > 0.0 {
                    rate += duration / (period * cost);
                    rated_edges += 1;
                }
                queue.push_back(NodeId(v as u32));
            }
        }
        if order.len() != edges.len() {
            return None; // disconnected piece or cycle
        }
        let share = if rated_edges > 0 {
            rate / rated_edges as f64
        } else {
            0.0
        };
        rates.push(share);
        trees.push(ReplayTree {
            tag,
            edges: order,
            arrival,
            share,
        });
    }
    let total: f64 = rates.iter().sum();
    if total > 0.0 {
        for tree in &mut trees {
            tree.share /= total;
        }
    } else {
        let uniform = 1.0 / trees.len() as f64;
        for tree in &mut trees {
            tree.share = uniform;
        }
    }
    Some(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::PlatformBuilder;
    use pm_platform::instances::{chain_instance, figure1_instance, MulticastInstance};
    use pm_sched::tree::WeightedTreeSet;

    #[test]
    fn schedule_replay_reports_expected_throughput() {
        let inst = chain_instance(3, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 2.0).unwrap(); // 2 messages per time-unit, loads = 1
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap();
        let report = Simulator::default().run_schedule(g, &sched);
        assert_eq!(report.one_port_violations, 0);
        assert!((report.throughput - 2.0).abs() < 1e-9);
        assert!((report.period - 0.5).abs() < 1e-9);
        // Fault-free replays deliver everything.
        assert_eq!(report.delivery_ratio, 1.0);
        assert!((report.goodput - report.throughput).abs() < 1e-9);
        assert!(report.fault_events.is_empty());
        assert!(report.fill_latency.is_finite());
    }

    #[test]
    fn schedule_replay_measures_fill_latency_from_the_slots() {
        // Chain 0 -> 1 -> 2 at cost 0.5, one message per unit period: the
        // pipeline fills in 1.5 periods at most (two crossings, the second
        // waiting for the next period's slot).
        let inst = chain_instance(3, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 1.0).unwrap();
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap();
        let report = Simulator::default().run_schedule(g, &sched);
        assert!(report.fill_latency > 0.0);
        assert!(report.fill_latency <= 2.0, "fill {}", report.fill_latency);
        assert!(report.makespan <= report.total_time + 1e-9);
    }

    #[test]
    fn masked_transfer_is_a_structured_error_not_a_degraded_report() {
        let inst = chain_instance(3, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 1.0).unwrap();
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap();
        let mut mask = NodeMask::full(g.node_count());
        mask.remove(NodeId(1));
        let err = Simulator::default()
            .run_schedule_on(g, &mask, &sched, &inst.targets)
            .unwrap_err();
        match err {
            SimError::MaskedTransfer { disabled, .. } => assert_eq!(disabled, NodeId(1)),
        }
    }

    #[test]
    fn total_loss_on_a_chain_edge_kills_downstream_delivery() {
        let inst = chain_instance(3, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 1.0).unwrap();
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap();
        let sim = Simulator::new(SimulationConfig {
            faults: Some(FaultModel::default().with_edge_loss(e(1, 2), 1.0)),
            ..SimulationConfig::default()
        });
        let report = sim
            .run_schedule_on(g, &NodeMask::full(3), &sched, &inst.targets)
            .unwrap();
        // The only target (node 2) sits behind the dead edge: zero delivery.
        assert_eq!(report.delivery_ratio, 0.0);
        assert_eq!(report.target_delivery, vec![(NodeId(2), 0.0)]);
        assert_eq!(report.goodput, 0.0);
        assert!(!report.fault_events.is_empty());
        // The scheduled-rate fields are fault-independent.
        assert!((report.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_loss_model_matches_fault_free_bit_for_bit() {
        let inst = figure1_instance();
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(
            &inst,
            vec![
                e(0, 1),
                e(0, 3),
                e(3, 2),
                e(2, 6),
                e(6, 7),
                e(7, 8),
                e(7, 9),
                e(7, 10),
                e(1, 11),
                e(11, 12),
                e(11, 13),
            ],
        )
        .unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 0.5).unwrap();
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 2.0).unwrap();
        let plain = Simulator::default().run_schedule(g, &sched);
        let zeroed = Simulator::new(SimulationConfig {
            faults: Some(FaultModel::lossy(123, 0.0)),
            ..SimulationConfig::default()
        })
        .run_schedule(g, &sched);
        assert_eq!(plain, zeroed);
    }

    #[test]
    fn tree_pipeline_matches_the_analytical_period_on_a_chain() {
        let inst = chain_instance(4, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2), e(2, 3)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 300,
            warmup: 30,
            ..SimulationConfig::default()
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        assert!((report.period - tree.period(g)).abs() < 1e-6);
        assert_eq!(report.completed_multicasts, 300.0);
        assert_eq!(report.delivery_ratio, 1.0);
    }

    #[test]
    fn tree_pipeline_matches_the_analytical_period_on_a_star() {
        // Source with 3 children, costs 1, 2, 3: the send port serializes
        // them, period = 6.
        let mut b = PlatformBuilder::new();
        let s = b.add_node();
        let c1 = b.add_node();
        let c2 = b.add_node();
        let c3 = b.add_node();
        b.add_edge(s, c1, 1.0).unwrap();
        b.add_edge(s, c2, 2.0).unwrap();
        b.add_edge(s, c3, 3.0).unwrap();
        let g = b.build().unwrap();
        let inst = MulticastInstance::new(g.clone(), s, vec![c1, c2, c3]).unwrap();
        let e = |a: NodeId, b: NodeId| g.find_edge(a, b).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(s, c1), e(s, c2), e(s, c3)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 200,
            warmup: 20,
            ..SimulationConfig::default()
        });
        let report = sim.run_tree_pipeline(&g, &tree, &inst.targets);
        assert!((tree.period(&g) - 6.0).abs() < 1e-12);
        assert!((report.period - 6.0).abs() < 1e-6);
    }

    #[test]
    fn tree_pipeline_on_figure1_single_tree_matches_its_period() {
        let inst = figure1_instance();
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        // The best single tree of the worked example (throughput 2/3).
        let tree = MulticastTree::new(
            &inst,
            vec![
                e(0, 1),
                e(0, 3),
                e(3, 2),
                e(2, 6),
                e(6, 7),
                e(7, 8),
                e(7, 9),
                e(7, 10),
                e(1, 11),
                e(11, 12),
                e(11, 13),
            ],
        )
        .unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 400,
            warmup: 50,
            ..SimulationConfig::default()
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        let analytical = tree.period(g);
        assert!(
            (report.period - analytical).abs() < 1e-3,
            "measured {} vs analytical {analytical}",
            report.period
        );
        assert_eq!(report.one_port_violations, 0);
    }

    #[test]
    fn tree_pipeline_under_loss_degrades_and_logs_events() {
        let inst = chain_instance(4, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2), e(2, 3)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 300,
            warmup: 30,
            faults: Some(FaultModel::lossy(7, 0.2)),
            ..SimulationConfig::default()
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        assert!(report.delivery_ratio < 1.0);
        assert!(report.delivery_ratio > 0.2);
        assert!(!report.fault_events.is_empty());
        // The delivered rate sits below the fault-free analytic rate.
        assert!(report.goodput < 1.0 / tree.period(g));
    }

    #[test]
    fn tree_pipeline_crash_window_loses_messages_then_recovers() {
        let inst = chain_instance(3, 1.0);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 50,
            warmup: 0,
            faults: Some(FaultModel::default().with_crash(NodeId(1), 5.0, 10.0)),
            ..SimulationConfig::default()
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        assert!(report.delivery_ratio < 1.0, "outage loses deliveries");
        assert!(report.delivery_ratio > 0.5, "recovery resumes deliveries");
        assert!(report
            .fault_events
            .iter()
            .all(|ev| ev.cause == FaultCause::Crash));
    }

    #[test]
    fn fill_makespan_is_the_single_message_latency() {
        // Chain of 3 hops at cost 0.5: one message reaches the last node
        // after 1.5 time units.
        let inst = chain_instance(4, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2), e(2, 3)]).unwrap();
        let makespan = Simulator::tree_fill_makespan(g, &tree, &inst.targets);
        assert!((makespan - 1.5).abs() < 1e-12, "makespan {makespan}");
    }

    #[test]
    fn warmup_larger_than_horizon_is_clamped() {
        let inst = chain_instance(3, 1.0);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 5,
            warmup: 100,
            ..SimulationConfig::default()
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        assert!(report.completed_multicasts >= 5.0 - 1e-9);
        assert!(report.throughput.is_finite());
    }
}
