//! Discrete-event simulation of pipelined multicasts under the one-port model.

use pm_platform::graph::{NodeId, Platform};
use pm_sched::load::OnePortLoads;
use pm_sched::schedule::PeriodicSchedule;
use pm_sched::tree::MulticastTree;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of steady-state periods to replay (schedule mode) or number of
    /// messages to inject (tree-pipeline mode).
    pub horizon: usize,
    /// Number of initial periods / messages ignored when measuring the
    /// steady-state throughput (warm-up of the pipeline).
    pub warmup: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            horizon: 200,
            warmup: 20,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total simulated time.
    pub total_time: f64,
    /// Number of multicasts fully delivered to every target.
    pub completed_multicasts: f64,
    /// Measured steady-state throughput (completions per time-unit, measured
    /// after the warm-up).
    pub throughput: f64,
    /// Measured steady-state period (`1 / throughput`).
    pub period: f64,
    /// Per-node send/receive busy time divided by the total time.
    pub utilization: OnePortLoads,
    /// Number of one-port violations detected (always 0 for valid schedules).
    pub one_port_violations: usize,
}

/// The discrete-event simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulator {
    /// Simulation parameters.
    pub config: SimulationConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimulationConfig) -> Self {
        Simulator { config }
    }

    /// Replays a periodic schedule for `config.horizon` periods.
    ///
    /// Every slot of every period is checked against the one-port model (a
    /// node must not appear twice as a sender or twice as a receiver within a
    /// slot); violations are counted in the report.
    pub fn run_schedule(&self, platform: &Platform, schedule: &PeriodicSchedule) -> SimReport {
        let periods = self.config.horizon.max(1);
        let mut busy = OnePortLoads::new(platform.node_count());
        let mut violations = 0usize;
        for slot in &schedule.slots {
            let mut senders: Vec<NodeId> = Vec::new();
            let mut receivers: Vec<NodeId> = Vec::new();
            for t in &slot.transfers {
                if senders.contains(&t.src) || receivers.contains(&t.dst) {
                    violations += 1;
                }
                senders.push(t.src);
                receivers.push(t.dst);
                busy.add_transfer(t.src, t.dst, t.duration);
            }
        }
        // Busy time accumulated over one period; utilization = busy / period.
        let total_time = schedule.period * periods as f64;
        let utilization = busy.scaled(1.0 / schedule.period);
        let completed = schedule.multicasts_per_period * periods as f64;
        let throughput = completed / total_time;
        SimReport {
            total_time,
            completed_multicasts: completed,
            throughput,
            period: if throughput > 0.0 {
                1.0 / throughput
            } else {
                f64::INFINITY
            },
            utilization,
            one_port_violations: violations,
        }
    }

    /// The *fill makespan* of a single message multicast down `tree`: the
    /// time from an idle start until every target has received it, under
    /// the one-port store-and-forward model (a horizon-1
    /// [`Simulator::run_tree_pipeline`]). This is the pipeline-depth
    /// quantity behind transition costs on drifting platforms: it bounds
    /// both how long the in-flight messages of an abandoned schedule take
    /// to drain and how long a freshly installed schedule runs before its
    /// first delivery. An associated function (no receiver): a single
    /// message's makespan is independent of any horizon/warmup
    /// configuration.
    pub fn tree_fill_makespan(
        platform: &Platform,
        tree: &MulticastTree,
        targets: &[NodeId],
    ) -> f64 {
        let one_shot = Simulator::new(SimulationConfig {
            horizon: 1,
            warmup: 0,
        });
        one_shot
            .run_tree_pipeline(platform, tree, targets)
            .total_time
    }

    /// Simulates the natural store-and-forward pipelining of a series of
    /// multicasts along a single multicast tree.
    ///
    /// The source injects `config.horizon` messages. Every node forwards each
    /// received message to its children in tree order, one child at a time
    /// (one-port in emission), and receives at most one message at a time
    /// (one-port in reception, enforced by construction since a node has a
    /// single parent). The measured steady-state throughput converges to the
    /// analytical `1 / tree.period()` of `pm-sched`.
    pub fn run_tree_pipeline(
        &self,
        platform: &Platform,
        tree: &MulticastTree,
        targets: &[NodeId],
    ) -> SimReport {
        let num_messages = self.config.horizon.max(1);
        let warmup = self.config.warmup.min(num_messages.saturating_sub(1));
        let n = platform.node_count();

        // children[v] = tree edges leaving v, in a fixed order.
        let mut children: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        for &e in tree.edges() {
            let edge = platform.edge(e);
            children[edge.src.index()].push((edge.dst, edge.cost));
        }

        // Event-driven simulation. Each node keeps a FIFO of messages it
        // still has to forward; its send port serializes the transfers.
        #[derive(Debug, PartialEq)]
        struct Event {
            time: f64,
            kind: EventKind,
        }
        #[derive(Debug, PartialEq)]
        enum EventKind {
            /// `node` receives message `msg` (it may start forwarding it).
            Arrival { node: NodeId, msg: usize },
            /// The send port of `node` becomes free.
            SendFree { node: NodeId },
        }
        impl Eq for Event {}
        impl PartialOrd for Event {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Event {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .time
                    .partial_cmp(&self.time)
                    .expect("times are finite")
            }
        }

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        // Per node: queue of (message, next child index to serve).
        let mut queues: Vec<std::collections::VecDeque<(usize, usize)>> =
            vec![std::collections::VecDeque::new(); n];
        let mut send_busy = vec![false; n];
        let mut busy = OnePortLoads::new(n);
        // Delivery bookkeeping.
        let mut received_count = vec![0usize; num_messages];
        let mut completion_time = vec![f64::NAN; num_messages];
        let needed = targets.len();
        let target_mask: Vec<bool> = {
            let mut mask = vec![false; n];
            for &t in targets {
                mask[t.index()] = true;
            }
            mask
        };

        // The source holds every message from the start: its queue is
        // pre-filled in message order and its send port starts working at 0.
        // (Going through Arrival events for the source would let the event
        // queue reorder same-time arrivals and scramble the message order.)
        if children[tree.source.index()].is_empty() {
            // Degenerate: the source has no children in the tree; nothing to do.
        } else {
            for msg in 0..num_messages {
                queues[tree.source.index()].push_back((msg, 0));
            }
            send_busy[tree.source.index()] = true;
            heap.push(Event {
                time: 0.0,
                kind: EventKind::SendFree { node: tree.source },
            });
        }

        let mut now = 0.0;
        let mut completed = 0usize;
        while let Some(event) = heap.pop() {
            now = event.time;
            match event.kind {
                EventKind::Arrival { node, msg } => {
                    if target_mask[node.index()] {
                        received_count[msg] += 1;
                        if received_count[msg] == needed {
                            completion_time[msg] = now;
                            completed += 1;
                        }
                    }
                    if !children[node.index()].is_empty() {
                        queues[node.index()].push_back((msg, 0));
                        if !send_busy[node.index()] {
                            heap.push(Event {
                                time: now,
                                kind: EventKind::SendFree { node },
                            });
                            send_busy[node.index()] = true;
                        }
                    }
                }
                EventKind::SendFree { node } => {
                    // Pick the next (message, child) transfer for this node.
                    match queues[node.index()].pop_front() {
                        None => {
                            send_busy[node.index()] = false;
                        }
                        Some((msg, child_idx)) => {
                            let (child, cost) = children[node.index()][child_idx];
                            busy.add_transfer(node, child, cost);
                            let done = now + cost;
                            heap.push(Event {
                                time: done,
                                kind: EventKind::Arrival { node: child, msg },
                            });
                            // Re-queue the message if more children remain.
                            if child_idx + 1 < children[node.index()].len() {
                                queues[node.index()].push_front((msg, child_idx + 1));
                            }
                            heap.push(Event {
                                time: done,
                                kind: EventKind::SendFree { node },
                            });
                        }
                    }
                }
            }
        }

        let total_time = now;
        // Steady-state throughput measured between the warmup-th completion
        // and the last completion (in completion-time order).
        let mut completions: Vec<f64> = completion_time
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .collect();
        completions.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (throughput, period) = if completions.len() > warmup + 1 {
            let t0 = completions[warmup];
            let t1 = *completions.last().expect("non-empty");
            let count = (completions.len() - 1 - warmup) as f64;
            if t1 > t0 {
                (count / (t1 - t0), (t1 - t0) / count)
            } else {
                (f64::INFINITY, 0.0)
            }
        } else {
            (0.0, f64::INFINITY)
        };
        let utilization = if total_time > 0.0 {
            busy.scaled(1.0 / total_time)
        } else {
            OnePortLoads::new(n)
        };

        SimReport {
            total_time,
            completed_multicasts: completed as f64,
            throughput,
            period,
            utilization,
            one_port_violations: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::PlatformBuilder;
    use pm_platform::instances::{chain_instance, figure1_instance, MulticastInstance};
    use pm_sched::tree::WeightedTreeSet;

    #[test]
    fn schedule_replay_reports_expected_throughput() {
        let inst = chain_instance(3, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 2.0).unwrap(); // 2 messages per time-unit, loads = 1
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap();
        let report = Simulator::default().run_schedule(g, &sched);
        assert_eq!(report.one_port_violations, 0);
        assert!((report.throughput - 2.0).abs() < 1e-9);
        assert!((report.period - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tree_pipeline_matches_the_analytical_period_on_a_chain() {
        let inst = chain_instance(4, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2), e(2, 3)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 300,
            warmup: 30,
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        assert!((report.period - tree.period(g)).abs() < 1e-6);
        assert_eq!(report.completed_multicasts, 300.0);
    }

    #[test]
    fn tree_pipeline_matches_the_analytical_period_on_a_star() {
        // Source with 3 children, costs 1, 2, 3: the send port serializes
        // them, period = 6.
        let mut b = PlatformBuilder::new();
        let s = b.add_node();
        let c1 = b.add_node();
        let c2 = b.add_node();
        let c3 = b.add_node();
        b.add_edge(s, c1, 1.0).unwrap();
        b.add_edge(s, c2, 2.0).unwrap();
        b.add_edge(s, c3, 3.0).unwrap();
        let g = b.build().unwrap();
        let inst = MulticastInstance::new(g.clone(), s, vec![c1, c2, c3]).unwrap();
        let e = |a: NodeId, b: NodeId| g.find_edge(a, b).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(s, c1), e(s, c2), e(s, c3)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 200,
            warmup: 20,
        });
        let report = sim.run_tree_pipeline(&g, &tree, &inst.targets);
        assert!((tree.period(&g) - 6.0).abs() < 1e-12);
        assert!((report.period - 6.0).abs() < 1e-6);
    }

    #[test]
    fn tree_pipeline_on_figure1_single_tree_matches_its_period() {
        let inst = figure1_instance();
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        // The best single tree of the worked example (throughput 2/3).
        let tree = MulticastTree::new(
            &inst,
            vec![
                e(0, 1),
                e(0, 3),
                e(3, 2),
                e(2, 6),
                e(6, 7),
                e(7, 8),
                e(7, 9),
                e(7, 10),
                e(1, 11),
                e(11, 12),
                e(11, 13),
            ],
        )
        .unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 400,
            warmup: 50,
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        let analytical = tree.period(g);
        assert!(
            (report.period - analytical).abs() < 1e-3,
            "measured {} vs analytical {analytical}",
            report.period
        );
        assert_eq!(report.one_port_violations, 0);
    }

    #[test]
    fn fill_makespan_is_the_single_message_latency() {
        // Chain of 3 hops at cost 0.5: one message reaches the last node
        // after 1.5 time units.
        let inst = chain_instance(4, 0.5);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2), e(2, 3)]).unwrap();
        let makespan = Simulator::tree_fill_makespan(g, &tree, &inst.targets);
        assert!((makespan - 1.5).abs() < 1e-12, "makespan {makespan}");
    }

    #[test]
    fn warmup_larger_than_horizon_is_clamped() {
        let inst = chain_instance(3, 1.0);
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e(0, 1), e(1, 2)]).unwrap();
        let sim = Simulator::new(SimulationConfig {
            horizon: 5,
            warmup: 100,
        });
        let report = sim.run_tree_pipeline(g, &tree, &inst.targets);
        assert!(report.completed_multicasts >= 5.0 - 1e-9);
        assert!(report.throughput.is_finite());
    }
}
