//! # Pipelined multicast on heterogeneous platforms
//!
//! Umbrella crate re-exporting the whole workspace. See the individual crates
//! for the detailed APIs:
//!
//! * [`platform`] — platform graphs, topology generation, paper instances,
//! * [`lp`] — the from-scratch linear-programming solver,
//! * [`sched`] — multicast trees, one-port loads, edge coloring, periodic schedules,
//! * [`core`] — LP bounds (`Multicast-LB`/`UB`, `Broadcast-EB`), heuristics
//!   (Reduced Broadcast, Augmented Multicast, Augmented Sources, MCPH) and the
//!   exact tree-packing baseline,
//! * [`complexity`] — MINIMUM-SET-COVER reductions (COMPACT-MULTICAST,
//!   COMPACT-PREFIX),
//! * [`sim`] — a discrete-event one-port simulator used to validate schedules.
//!
//! ## Quickstart
//!
//! ```
//! use pipelined_multicast::prelude::*;
//!
//! // The worked example of the paper (Figure 1).
//! let inst = figure1_instance();
//! let lb = MulticastLb::new(&inst).solve().unwrap();
//! // The lower bound on the period is 1 time-unit (throughput 1 msg/unit).
//! assert!((lb.period - 1.0).abs() < 1e-6);
//! ```

pub use pm_complexity as complexity;
pub use pm_core as core;
pub use pm_lp as lp;
pub use pm_platform as platform;
pub use pm_sched as sched;
pub use pm_sim as sim;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use pm_core::exact::ExactTreePacking;
    pub use pm_core::formulations::{
        BroadcastEb, MulticastLb, MulticastMultiSourceUb, MulticastUb,
    };
    pub use pm_core::heuristics::{
        AugmentedMulticast, AugmentedSources, Mcph, ReducedBroadcast, ThroughputHeuristic,
    };
    pub use pm_core::realize::{realize, Realization, SteadyStateSolution};
    pub use pm_core::report::{HeuristicKind, MulticastReport};
    pub use pm_platform::graph::{EdgeId, NodeId, Platform, PlatformBuilder};
    pub use pm_platform::instances::{figure1_instance, figure5_instance, MulticastInstance};
    pub use pm_platform::topology::{PlatformClass, TiersLikeGenerator};
    pub use pm_sched::schedule::PeriodicSchedule;
    pub use pm_sched::tree::{MulticastTree, TreeError, WeightedTreeSet};
    pub use pm_sim::simulator::{SimulationConfig, Simulator};
    pub use pm_sim::validate::{validate_tree_set, TreeSetValidation};
}
