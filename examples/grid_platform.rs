//! Domain scenario: a data-distribution service on a hierarchical "grid"
//! platform (the setting that motivates the paper's introduction). A master
//! node on the WAN backbone streams a series of equal-size data blocks to a
//! subset of the LAN worker nodes; we compare the periods achieved by every
//! heuristic and check the MCPH tree against the discrete-event simulator.
//!
//! Run with: `cargo run --release --example grid_platform [seed] [density]`

use pipelined_multicast::prelude::*;
use pm_core::heuristics::{LowerBoundReference, ScatterBaseline, ThroughputHeuristic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let density: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    let mut generator = TiersLikeGenerator::reduced_scale(PlatformClass::Small, seed);
    let topology = generator.generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let instance = topology.sample_instance(density, &mut rng);

    println!(
        "grid platform: {} nodes ({} WAN / {} MAN / {} LAN), {} directed links",
        instance.platform.node_count(),
        topology.wan.len(),
        topology.man.len(),
        topology.lan.len(),
        instance.platform.edge_count()
    );
    println!(
        "master {} streams blocks to {} of the {} LAN workers (density {density})",
        instance.platform.name(instance.source),
        instance.target_count(),
        topology.lan.len()
    );
    println!();

    let mut results = Vec::new();
    for heuristic in [
        &ScatterBaseline as &dyn ThroughputHeuristic,
        &LowerBoundReference,
        &Mcph,
        &AugmentedMulticast,
        &ReducedBroadcast,
        &AugmentedSources::default(),
    ] {
        let result = heuristic.run(&instance).expect("heuristic runs");
        println!(
            "{:<16} period {:>8.4}   blocks/time-unit {:>8.4}   LP solves {:>3}",
            result.name, result.period, result.throughput, result.lp_solves
        );
        results.push(result);
    }

    // Validate the MCPH tree by actually pipelining blocks through it.
    let mcph = Mcph.run(&instance).expect("MCPH runs");
    let tree = mcph.tree.expect("MCPH produces a tree");
    let sim = Simulator::new(SimulationConfig {
        horizon: 500,
        warmup: 50,
        ..SimulationConfig::default()
    });
    let report = sim.run_tree_pipeline(&instance.platform, &tree, &instance.targets);
    println!();
    println!(
        "simulated MCPH pipeline: measured period {:.4} (analytical {:.4}), {} blocks delivered",
        report.period, mcph.period, report.completed_multicasts
    );
}
