//! Multi-commodity super-periods — the quickstart for the joint
//! steady-state scheduling of concurrent flows (`pm_core::multi`).
//!
//! One session owns the Figure 1 platform and a workload of two
//! concurrent commodities with skewed demands: a heavy two-target
//! multicast out of the source and a light single-target flow out of a
//! relay. The joint LP splits every node's one-port send/receive
//! capacity across both, the realization packs both commodities' trees
//! into one super-period schedule, and the simulator certifies each
//! commodity's own rate from its tag-restricted sub-schedule. A drift
//! event then re-solves warm and re-realizes, measuring the switchover.
//!
//! Run with: `cargo run --release --example multi`

use pm_core::multi::Commodity;
use pm_core::session::Session;
use pm_platform::graph::NodeId;
use pm_platform::instances::figure1_instance;

fn main() {
    let instance = figure1_instance();
    let commodities = vec![
        // The heavy flow: 4 messages per super-unit, two targets.
        Commodity {
            source: instance.source,
            targets: instance.targets.clone(),
            demand: 4.0,
        },
        // A light competing flow down the relay backbone.
        Commodity {
            source: NodeId(3),
            targets: vec![NodeId(6)],
            demand: 1.0,
        },
    ];
    let mut session = Session::new(instance);

    println!("== two concurrent commodities on the Figure 1 platform ==\n");
    let report = |label: &str, session: &mut Session| {
        let solve = session
            .solve_multi(&commodities)
            .expect("platform stays connected");
        let re = session
            .re_realize_multi()
            .expect("the joint flow realizes as one super-period");
        let r = &re.realization;
        println!(
            "{label:<24} T* {:>7.4}  super-period {:>7.4}  trees {}  violations {}",
            solve.flow.period,
            r.super_period,
            r.tree_sets.iter().map(|t| t.len()).sum::<usize>(),
            r.simulated.one_port_violations,
        );
        for c in 0..commodities.len() {
            println!(
                "  commodity {c}: LP rate {:.4}, simulated {:.4} ({} violations in its lane)",
                solve.flow.rates[c],
                r.simulated_rates[c],
                r.commodity_reports[c].one_port_violations,
            );
        }
        if let Some(t) = re.transition {
            println!(
                "  ↳ switchover: drain {:.3} + fill {:.3}, Δthroughput {:+.4}",
                t.drain_time, t.first_delivery_latency, t.throughput_delta
            );
        }
        println!();
    };

    report("baseline", &mut session);

    // The platform drifts under the running super-period...
    let e = session.instance().platform.edge_ids().next().unwrap();
    session.set_edge_cost(e, 3.0).unwrap();
    report("after edge drift", &mut session);
}
