//! Quickstart: build a small heterogeneous platform, compute the LP bounds,
//! run the heuristics, and validate the best solution with the simulator.
//!
//! Run with: `cargo run --example quickstart`

use pipelined_multicast::prelude::*;
use pm_core::heuristics::{LowerBoundReference, ScatterBaseline, ThroughputHeuristic};

fn main() {
    // The worked example of the paper (Section 3, Figure 1): a source
    // multicasting to seven targets across two clusters.
    let instance = figure1_instance();
    println!(
        "platform: {} nodes, {} edges; multicasting from {} to {} targets",
        instance.platform.node_count(),
        instance.platform.edge_count(),
        instance.platform.name(instance.source),
        instance.target_count()
    );

    // 1. The two LP bounds on the period (time per multicast).
    let lb = MulticastLb::new(&instance).solve().expect("lower bound");
    let ub = MulticastUb::new(&instance)
        .solve()
        .expect("upper bound (scatter)");
    println!(
        "period bounds: {:.3} <= optimal period <= {:.3}",
        lb.period, ub.period
    );

    // 2. The heuristics of the paper.
    for heuristic in [
        &Mcph as &dyn ThroughputHeuristic,
        &ReducedBroadcast,
        &AugmentedMulticast,
        &AugmentedSources::default(),
        &ScatterBaseline,
        &LowerBoundReference,
    ] {
        let result = heuristic.run(&instance).expect("heuristic runs");
        println!(
            "{:<16} period {:.3}  (throughput {:.3})",
            result.name, result.period, result.throughput
        );
    }

    // 3. The exact optimum (small platform): a weighted combination of trees.
    let exact = ExactTreePacking::new()
        .solve(&instance)
        .expect("exact optimum");
    println!(
        "exact optimum: throughput {:.3} with {} trees (best single tree only reaches {:.3})",
        exact.throughput,
        exact.tree_set.len(),
        exact.best_single_tree_throughput
    );

    // 4. Turn the optimal tree combination into an explicit periodic schedule
    //    and replay it in the one-port simulator.
    let (scaled, _) = exact.tree_set.scaled_to_feasible(&instance.platform);
    let schedule = PeriodicSchedule::from_weighted_trees(&instance.platform, &scaled, 1.0)
        .expect("schedule fits in one period");
    schedule
        .validate(&instance.platform)
        .expect("one-port valid");
    let report = Simulator::new(SimulationConfig {
        horizon: 50,
        warmup: 5,
    })
    .run_schedule(&instance.platform, &schedule);
    println!(
        "simulated schedule: throughput {:.3}, {} one-port violations",
        report.throughput, report.one_port_violations
    );
}
