//! Quickstart: build a small heterogeneous platform, compute the LP bounds,
//! run the heuristics, and validate the best solution with the simulator.
//!
//! Run with: `cargo run --example quickstart`

use pipelined_multicast::prelude::*;
use pm_core::heuristics::{LowerBoundReference, ScatterBaseline, ThroughputHeuristic};

fn main() {
    // The worked example of the paper (Section 3, Figure 1): a source
    // multicasting to seven targets across two clusters.
    let instance = figure1_instance();
    println!(
        "platform: {} nodes, {} edges; multicasting from {} to {} targets",
        instance.platform.node_count(),
        instance.platform.edge_count(),
        instance.platform.name(instance.source),
        instance.target_count()
    );

    // 1. The two LP bounds on the period (time per multicast).
    let lb = MulticastLb::new(&instance).solve().expect("lower bound");
    let ub = MulticastUb::new(&instance)
        .solve()
        .expect("upper bound (scatter)");
    println!(
        "period bounds: {:.3} <= optimal period <= {:.3}",
        lb.period, ub.period
    );

    // 2. The heuristics of the paper.
    for heuristic in [
        &Mcph as &dyn ThroughputHeuristic,
        &ReducedBroadcast,
        &AugmentedMulticast,
        &AugmentedSources::default(),
        &ScatterBaseline,
        &LowerBoundReference,
    ] {
        let result = heuristic.run(&instance).expect("heuristic runs");
        println!(
            "{:<16} period {:.3}  (throughput {:.3})",
            result.name, result.period, result.throughput
        );
    }

    // 3. The exact optimum (small platform): a weighted combination of trees.
    let exact = ExactTreePacking::new()
        .solve(&instance)
        .expect("exact optimum");
    println!(
        "exact optimum: throughput {:.3} with {} trees (best single tree only reaches {:.3})",
        exact.throughput,
        exact.tree_set.len(),
        exact.best_single_tree_throughput
    );

    // 4. Turn the optimal tree combination into an explicit periodic schedule
    //    and replay it in the one-port simulator.
    let validation = pm_sim::validate_tree_set(
        &instance.platform,
        &exact.tree_set,
        SimulationConfig {
            horizon: 50,
            warmup: 5,
            ..SimulationConfig::default()
        },
    )
    .expect("optimal tree set schedules within one period");
    println!(
        "simulated schedule: throughput {:.3}, {} one-port violations",
        validation.report.throughput, validation.report.one_port_violations
    );

    // 5. The same certification, straight from an LP heuristic: realize the
    //    Reduced Broadcast flows as weighted trees and simulate them.
    let reduced = ReducedBroadcast.run(&instance).expect("heuristic runs");
    let solution = reduced
        .steady_state
        .expect("LP heuristics expose their steady-state flows");
    let realization = pm_core::realize::realize(&instance, &solution).expect("flows realize");
    println!(
        "realized Red. BC: {} trees, simulated throughput {:.3}, gap {:.2}%",
        realization.tree_set.len(),
        realization.simulated.throughput,
        100.0 * realization.realization_gap
    );
}
