//! Long-lived sessions on a drifting platform — the quickstart for the
//! stateful `pm_core::Session` API.
//!
//! One session owns the Figure 1 platform; we solve + realize the broadcast
//! steady state, then drift an edge cost and knock a relay out, re-solving
//! incrementally after each event. Every re-solve warm-starts from the
//! previous optimal basis (watch the warm-hit columns), and every
//! re-realization seeds its tree pool from the previous schedule and
//! reports the simulator-measured transition cost of the switchover.
//!
//! Run with: `cargo run --release --example drift`

use pm_core::report::HeuristicKind;
use pm_core::session::Session;
use pm_platform::graph::NodeId;
use pm_platform::instances::figure1_instance;

fn main() {
    let instance = figure1_instance();
    let kind = HeuristicKind::Broadcast;
    let mut session = Session::new(instance);

    println!("== long-lived session on the Figure 1 platform ==\n");
    let report = |label: &str, session: &mut Session| {
        let solve = session.solve(kind).expect("platform stays connected");
        let re = session.re_realize(kind).expect("broadcast realizes");
        println!(
            "{label:<28} period {:>7.4}  lp_solves {:>2} ({} warm)  trees {}  gap {:.1e}",
            solve.result.period,
            solve.stats.lp_solves,
            solve.stats.warm_hits,
            re.realization.tree_set.len(),
            re.realization.realization_gap,
        );
        if let Some(t) = re.transition {
            println!(
                "{:<28} drain {:.3} + fill {:.3} = {:.3} time-units \
                 (≈ {:.2} multicasts forfeited), Δthroughput {:+.4}, \
                 trees kept/added/dropped {}/{}/{}",
                "  ↳ switchover",
                t.drain_time,
                t.first_delivery_latency,
                t.switch_time,
                t.multicasts_lost,
                t.throughput_delta,
                t.trees_kept,
                t.trees_added,
                t.trees_dropped,
            );
        }
    };

    report("baseline", &mut session);

    // Drift: the backbone edge P0 -> P1 becomes 3x slower.
    let edge = session
        .instance()
        .platform
        .find_edge(NodeId(0), NodeId(1))
        .expect("figure 1 has the P0 -> P1 backbone edge");
    let slow = session.instance().platform.cost(edge) * 3.0;
    session.set_edge_cost(edge, slow).unwrap();
    report("edge P0->P1 cost x3", &mut session);

    // Churn: the P4/P5 relay detour goes down...
    session.disable_node(NodeId(4)).unwrap();
    session.disable_node(NodeId(5)).unwrap();
    report("relays P4, P5 down", &mut session);

    // ... and comes back.
    session.enable_node(NodeId(4)).unwrap();
    session.enable_node(NodeId(5)).unwrap();
    report("relays back up", &mut session);

    let stats = session.stats();
    println!(
        "\nsession totals: {} solves, {} realizations, {} edge edits, {} node events; \
         {} LPs ({:.0}% warm), {}+{} pivots",
        stats.solves,
        stats.realizations,
        stats.edge_edits,
        stats.node_events,
        stats.lp_solves,
        100.0 * stats.warm_hit_rate(),
        stats.phase1_pivots,
        stats.phase2_pivots,
    );
}
