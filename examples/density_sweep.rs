//! Domain scenario: a capacity-planning study. For one hierarchical platform,
//! sweep the fraction of LAN nodes subscribed to the multicast stream and
//! watch how the achievable period evolves for the cheap tree heuristic
//! (MCPH), the broadcast fallback, and the theoretical bounds — a
//! single-platform slice of the paper's Figure 11.
//!
//! Run with: `cargo run --release --example density_sweep [seed]`

use pipelined_multicast::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut generator = TiersLikeGenerator::reduced_scale(PlatformClass::Small, seed);
    let topology = generator.generate();

    println!(
        "platform: {} nodes, {} LAN subscribers available",
        topology.platform.node_count(),
        topology.lan.len()
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "density", "targets", "lower bound", "scatter", "MCPH", "broadcast"
    );

    for &density in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut rng = StdRng::seed_from_u64(seed ^ (density * 100.0) as u64);
        let instance = topology.sample_instance(density, &mut rng);
        let report = MulticastReport::collect(
            &instance,
            &[
                HeuristicKind::LowerBound,
                HeuristicKind::Scatter,
                HeuristicKind::Mcph,
                HeuristicKind::Broadcast,
            ],
        )
        .expect("report collects");
        println!(
            "{:>8.2} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            density,
            instance.target_count(),
            report.period(HeuristicKind::LowerBound).unwrap(),
            report.period(HeuristicKind::Scatter).unwrap(),
            report.period(HeuristicKind::Mcph).unwrap(),
            report.period(HeuristicKind::Broadcast).unwrap(),
        );
    }
    println!();
    println!(
        "reading: the broadcast fallback converges towards the other heuristics as the density \
         grows (Section 7 of the paper), while scatter degrades linearly with the target count."
    );
}
