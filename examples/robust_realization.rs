//! Robust redundant realizations — the quickstart for
//! `pm_core::realize_robust`.
//!
//! A source feeds three targets through two relay branches, so every
//! target has two edge-disjoint delivery paths. We realize the
//! lower-bound steady state at disjointness `f = 1` (the best single
//! tree) and `f = 2` (two edge-disjoint trees carrying every message),
//! then replay both schedules in the fault-injected simulator under 5%
//! i.i.d. message loss: the frontier trades steady-state throughput for
//! delivery, and the `f = 2` schedule keeps delivering even when any
//! single edge dies outright.
//!
//! Run with: `cargo run --release --example robust_realization`

use pm_core::formulations::MulticastLb;
use pm_core::realize::SteadyStateSolution;
use pm_core::{realize_robust, RobustOptions, RobustRealization};
use pm_platform::graph::{NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use pm_sim::SimulationConfig;

/// Source `S` reaches each target through both `A` and `B`: two
/// edge-disjoint paths per target, with heterogeneous one-port costs.
fn dual_homed_instance() -> MulticastInstance {
    let mut b = PlatformBuilder::new();
    let s = b.add_named_node("S");
    let relay_a = b.add_named_node("A");
    let relay_b = b.add_named_node("B");
    let targets: Vec<NodeId> = (0..3).map(|i| b.add_named_node(&format!("T{i}"))).collect();
    b.add_edge(s, relay_a, 1.0).expect("uplink A");
    b.add_edge(s, relay_b, 1.2).expect("uplink B");
    for &t in &targets {
        b.add_edge(relay_a, t, 0.5).expect("branch A");
        b.add_edge(relay_b, t, 0.6).expect("branch B");
    }
    let platform = b.build().expect("dual-homed platform");
    MulticastInstance::new(platform, s, targets).expect("dual-homed instance")
}

fn realize_at(instance: &MulticastInstance, f: usize) -> RobustRealization {
    let lb = MulticastLb::new(instance).solve().expect("LB solves");
    let solution =
        SteadyStateSolution::from_flow_solution(instance, &instance.targets, &lb, lb.period)
            .expect("LB flows decompose");
    let options = RobustOptions {
        disjointness: f,
        verify_loss: 0.05,
        sim: SimulationConfig {
            horizon: 200,
            warmup: 20,
            ..SimulationConfig::default()
        },
        ..RobustOptions::default()
    };
    realize_robust(instance, &solution, &options).expect("robust realization")
}

fn main() {
    let instance = dual_homed_instance();
    println!("== robust realization on a dual-homed platform ==\n");
    println!(
        "{} nodes, {} targets, every target dual-homed (capability {})\n",
        instance.platform.node_count(),
        instance.target_count(),
        instance
            .targets
            .iter()
            .map(|&t| instance.platform.edge_disjoint_paths(instance.source, t))
            .min()
            .unwrap_or(0),
    );

    let f1 = realize_at(&instance, 1);
    let f2 = realize_at(&instance, 2);
    for r in [&f1, &f2] {
        println!(
            "f={}  trees {}  period {:.4}  throughput {:.4}  (baseline {:.4}, \
             sacrifice {:.1}%)",
            r.options.disjointness,
            r.tree_set.len(),
            r.period,
            r.robust_throughput,
            r.baseline_throughput,
            100.0 * r.throughput_sacrifice(),
        );
        println!(
            "     disjoint paths per target ≥ {} (union max-flow ≥ {}), \
             survives any single-edge total loss: {}",
            r.path_disjointness, r.achieved_disjointness, r.survives_single_edge_loss,
        );
        println!(
            "     delivery under 5% loss: {:.4} measured (analytic floor {:.4}), \
             goodput {:.4}\n",
            r.under_loss.delivery_ratio,
            r.expected_delivery(&instance.platform, 0.05),
            r.under_loss.goodput,
        );
    }

    let delivery_gained = f2.under_loss.delivery_ratio - f1.under_loss.delivery_ratio;
    let throughput_paid = f1.robust_throughput - f2.robust_throughput;
    println!(
        "the frontier: +{:.1}% delivery under 5% loss costs {:.1}% steady-state throughput",
        100.0 * delivery_gained,
        100.0 * throughput_paid / f1.robust_throughput,
    );
    assert!(
        f2.survives_single_edge_loss,
        "f = 2 must survive edge death"
    );
    assert!(delivery_gained > 0.0, "redundancy must buy delivery");
}
