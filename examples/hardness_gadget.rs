//! Domain scenario: the complexity side of the paper as an executable
//! experiment. We take a set-cover instance, build the COMPACT-MULTICAST
//! gadget of Theorem 1, and show that (i) covers and single multicast trees
//! are interchangeable, and (ii) heuristics that build a single tree on this
//! platform are implicitly solving set cover.
//!
//! Run with: `cargo run --example hardness_gadget`

use pm_complexity::set_cover::SetCoverInstance;
use pm_complexity::{MulticastGadget, PrefixGadget};
use pm_core::heuristics::{Mcph, ThroughputHeuristic};

fn main() {
    let set_cover = SetCoverInstance::paper_example();
    let optimum = set_cover.minimum_cover();
    let greedy = set_cover.greedy_cover();
    println!(
        "set cover: {} elements, {} subsets; minimum cover {}, greedy cover {}",
        set_cover.universe(),
        set_cover.num_subsets(),
        optimum.len(),
        greedy.len()
    );

    // The multicast gadget with B = optimum: throughput 1 is reachable with a
    // single tree iff a cover of size <= B exists.
    let gadget = MulticastGadget::new(&set_cover, optimum.len());
    let tree = gadget
        .cover_to_tree(&optimum)
        .expect("cover converts to a tree");
    println!(
        "tree built from the minimum cover: period {:.3} (throughput {:.3})",
        tree.period(&gadget.instance.platform),
        tree.throughput(&gadget.instance.platform)
    );

    // Run MCPH on the gadget and read the cover it implicitly computed.
    let mcph = Mcph.run(&gadget.instance).expect("MCPH runs");
    let implied_cover = gadget.tree_to_cover(mcph.tree.as_ref().expect("tree"));
    println!(
        "MCPH on the gadget: period {:.3}; it uses {} subset nodes, i.e. it found a cover of size {}",
        mcph.period,
        implied_cover.len(),
        implied_cover.len()
    );
    assert!(set_cover.is_cover(&implied_cover));

    // The parallel-prefix gadget of Theorem 5.
    let prefix = PrefixGadget::new(&set_cover, optimum.len());
    let budget = prefix.scheme_budget(&optimum);
    println!(
        "prefix gadget: {} nodes; canonical scheme max budget {:.4} (<= 1 means one prefix per time-unit)",
        prefix.platform.node_count(),
        budget.max()
    );
}
