//! Property-based tests of the realization pipeline on random platforms:
//! decomposing a feasible LP `FlowSolution` (any of the four formulations)
//! yields a weighted tree set that
//!
//! * respects the one-port budget — carrying one multicast per realized
//!   period never loads a port beyond that period (`+1e-6`),
//! * never overshoots the LP period it certifies,
//! * colors into a periodic schedule whose simulated throughput matches the
//!   tree set's analytical throughput within 1%, with zero one-port
//!   violations.
//!
//! The scatter formulation (`Multicast-UB`) additionally realizes its LP
//! period *exactly* (sum accounting dominates tree sharing), as does the
//! multi-source scatter; `Multicast-LB` is not always achievable, so its gap
//! is only required to be reported honestly (non-negative shortfall).

use pipelined_multicast::prelude::*;
use pm_core::formulations::{BroadcastEb, MulticastMultiSourceUb};
use pm_core::realize::{realize, SteadyStateSolution};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random strongly-connected-enough platform with a random target
/// set (same family as `bounds_properties`).
fn random_instance(seed: u64) -> MulticastInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..8usize);
    let mut builder = PlatformBuilder::new();
    let nodes = builder.add_nodes(n);
    for i in 0..n {
        let cost = rng.gen_range(0.2..2.0);
        builder
            .add_edge(nodes[i], nodes[(i + 1) % n], cost)
            .unwrap();
    }
    for _ in 0..n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let cost = rng.gen_range(0.2..2.0);
            let _ = builder.add_edge(nodes[a], nodes[b], cost);
        }
    }
    let platform = builder.build().unwrap();
    let mut targets: Vec<NodeId> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    if targets.is_empty() {
        targets.push(nodes[1]);
    }
    MulticastInstance::new(platform, nodes[0], targets).unwrap()
}

/// The shared invariant checks; returns the realization gap.
fn check_realization(
    instance: &MulticastInstance,
    solution: &SteadyStateSolution,
    label: &str,
) -> Result<f64, TestCaseError> {
    let real =
        realize(instance, solution).unwrap_or_else(|e| panic!("{label}: realization failed: {e}"));
    let platform = &instance.platform;
    // One-port budget: at the realized rates, every port fits in a unit of
    // time — equivalently, one multicast per realized period never loads a
    // port beyond the period.
    let rate_load = real.tree_set.loads(platform).max_load();
    prop_assert!(rate_load <= 1.0 + 1e-6, "{label}: rate load {rate_load}");
    // The certificate never overshoots the LP claim.
    prop_assert!(
        real.achieved_period >= real.lp_period - 1e-7,
        "{label}: achieved {} beats the LP {}",
        real.achieved_period,
        real.lp_period
    );
    // The colored schedule replays at the analytical throughput.
    let analytical = real.tree_set.throughput();
    prop_assert_eq!(real.simulated.one_port_violations, 0);
    prop_assert!(
        (real.simulated.throughput - analytical).abs() <= 0.01 * analytical,
        "{label}: simulated {} vs analytical {analytical}",
        real.simulated.throughput
    );
    Ok(real.realization_gap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_four_formulations_realize_on_random_platforms(seed in 0u64..10_000) {
        let instance = random_instance(seed);
        let broadcast_commodities: Vec<NodeId> = instance
            .platform
            .nodes()
            .filter(|&v| v != instance.source)
            .collect();

        // Multicast-UB (scatter): achievable by construction — gap 0.
        let ub = MulticastUb::new(&instance).solve().unwrap();
        let solution = SteadyStateSolution::from_flow_solution(
            &instance,
            &instance.targets,
            &ub,
            ub.period,
        )
        .unwrap();
        let gap = check_realization(&instance, &solution, "Multicast-UB")?;
        prop_assert!(gap <= 1e-6, "scatter gap {gap}");

        // Multicast-LB: a lower bound, not always achievable; the gap is the
        // honestly reported shortfall.
        let lb = MulticastLb::new(&instance).solve().unwrap();
        let solution = SteadyStateSolution::from_flow_solution(
            &instance,
            &instance.targets,
            &lb,
            lb.period,
        )
        .unwrap();
        check_realization(&instance, &solution, "Multicast-LB")?;

        // Broadcast-EB: restricted to the instance-target rows.
        let eb = BroadcastEb::new(&instance).solve().unwrap();
        let solution = SteadyStateSolution::from_flow_solution(
            &instance,
            &broadcast_commodities,
            &eb,
            eb.period,
        )
        .unwrap();
        check_realization(&instance, &solution, "Broadcast-EB")?;

        // MulticastMultiSource-UB with a promoted secondary source (the
        // first non-source non-target node, or the first target otherwise).
        let secondary = instance
            .platform
            .nodes()
            .find(|&v| v != instance.source && !instance.is_target(v))
            .or_else(|| instance.targets.first().copied());
        let mut sources = vec![instance.source];
        sources.extend(secondary);
        let ms = MulticastMultiSourceUb::new(&instance, sources.clone())
            .unwrap()
            .solve()
            .unwrap();
        let solution = SteadyStateSolution::MultiSource {
            period: ms.period,
            sources,
            dest_nodes: ms.dest_nodes.clone(),
            dest_flows: ms.dest_flows.clone(),
        };
        check_realization(&instance, &solution, "MulticastMultiSource-UB")?;
    }
}
