//! Property-based integration tests of the ordering guarantees proved in the
//! paper, on randomly generated platforms:
//!
//! * `Multicast-LB <= exact optimum <= every heuristic <= Multicast-UB`
//!   wherever the exact optimum is computable,
//! * `Multicast-UB <= |Ptarget| * Multicast-LB` (the |T|-approximation),
//! * `Multicast-LB <= Broadcast-EB`.

use pipelined_multicast::prelude::*;
use pm_core::formulations::BroadcastEb as Eb;
use pm_core::heuristics::{Mcph as McphH, ThroughputHeuristic};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random strongly-connected-enough platform with a random target set.
fn random_instance(seed: u64) -> MulticastInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..8usize);
    let mut builder = PlatformBuilder::new();
    let nodes = builder.add_nodes(n);
    // A ring guarantees reachability, random chords add path diversity.
    for i in 0..n {
        let cost = rng.gen_range(0.2..2.0);
        builder
            .add_edge(nodes[i], nodes[(i + 1) % n], cost)
            .unwrap();
    }
    for _ in 0..n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let cost = rng.gen_range(0.2..2.0);
            let _ = builder.add_edge(nodes[a], nodes[b], cost);
        }
    }
    let platform = builder.build().unwrap();
    let mut targets: Vec<NodeId> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    if targets.is_empty() {
        targets.push(nodes[1]);
    }
    MulticastInstance::new(platform, nodes[0], targets).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lp_bounds_and_heuristics_are_ordered(seed in 0u64..10_000) {
        let instance = random_instance(seed);
        let lb = MulticastLb::new(&instance).solve().unwrap().period;
        let ub = MulticastUb::new(&instance).solve().unwrap().period;
        prop_assert!(lb <= ub + 1e-6);
        prop_assert!(ub <= lb * instance.target_count() as f64 + 1e-6);

        let eb = Eb::new(&instance).solve().unwrap().period;
        prop_assert!(lb <= eb + 1e-6, "Multicast-LB must not exceed Broadcast-EB");

        let mcph = McphH.run(&instance).unwrap().period;
        prop_assert!(mcph >= lb - 1e-6);

        // On these small platforms the exact optimum is computable and must
        // sit between the LB and every achievable strategy.
        let exact = ExactTreePacking::new().solve(&instance).unwrap();
        prop_assert!(exact.period >= lb - 1e-6);
        prop_assert!(exact.period <= ub + 1e-6);
        prop_assert!(mcph >= exact.period - 1e-6);
        prop_assert!(1.0 / exact.best_single_tree_throughput >= exact.period - 1e-6);
    }

    #[test]
    fn exact_tree_set_is_always_one_port_feasible(seed in 0u64..10_000) {
        let instance = random_instance(seed);
        let exact = ExactTreePacking::new().solve(&instance).unwrap();
        prop_assert!(exact.tree_set.is_feasible(&instance.platform, 1e-6));
        // And it can be materialised as a valid periodic schedule.
        let validation = pm_sim::validate_tree_set(
            &instance.platform,
            &exact.tree_set,
            SimulationConfig::default(),
        )
        .unwrap();
        prop_assert!(validation.throughput >= exact.throughput - 1e-6);
        prop_assert_eq!(validation.report.one_port_violations, 0);
    }
}
