//! Integration test of the complexity reductions against the exact solver:
//! on the COMPACT-MULTICAST gadget, the optimal *single-tree* throughput is
//! governed by the minimum set cover, which ties together `pm-complexity`,
//! `pm-sched` and `pm-core`.

use pm_complexity::set_cover::SetCoverInstance;
use pm_complexity::MulticastGadget;
use pm_core::exact::ExactTreePacking;
use pm_core::formulations::MulticastLb;

#[test]
fn gadget_single_tree_optimum_equals_the_cover_bound() {
    let sc = SetCoverInstance::paper_example();
    let optimum_cover = sc.minimum_cover().len();
    let gadget = MulticastGadget::new(&sc, optimum_cover);
    let exact = ExactTreePacking::new().solve(&gadget.instance).unwrap();
    // The best single tree on the gadget uses an optimal cover: its period is
    // exactly |cover| / B = 1.
    let best_single_period = 1.0 / exact.best_single_tree_throughput;
    assert!(
        (best_single_period - 1.0).abs() < 1e-6,
        "best single tree period {best_single_period}"
    );
    // The tree found corresponds to a genuine cover of minimum size.
    let cover = gadget.tree_to_cover(&exact.best_single_tree);
    assert!(sc.is_cover(&cover));
    assert_eq!(cover.len(), optimum_cover);
}

#[test]
fn gadget_lower_bound_never_exceeds_the_single_tree_value() {
    for seed in 0..5u64 {
        let sc = SetCoverInstance::random(6, 4, seed);
        let bound = sc.minimum_cover().len();
        let gadget = MulticastGadget::new(&sc, bound);
        let lb = MulticastLb::new(&gadget.instance).solve().unwrap().period;
        let exact = ExactTreePacking::new().solve(&gadget.instance).unwrap();
        assert!(lb <= exact.period + 1e-6, "seed {seed}");
        assert!(
            exact.period <= 1.0 / exact.best_single_tree_throughput + 1e-6,
            "seed {seed}: combinations are at least as good as the best tree"
        );
    }
}
