//! Integration test on generated Tiers-like platforms: the full heuristic
//! report of Figure 11 stays consistent (ordering of the reference curves,
//! finiteness, broadcast dominating multicast-LB) across seeds and densities.

use pipelined_multicast::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure11_style_report_is_consistent_on_small_platforms() {
    for seed in [3u64, 8] {
        let mut generator = TiersLikeGenerator::reduced_scale(PlatformClass::Small, seed);
        let topology = generator.generate();
        for &density in &[0.3, 1.0] {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
            let instance = topology.sample_instance(density, &mut rng);
            let report = MulticastReport::collect(
                &instance,
                &[
                    HeuristicKind::Scatter,
                    HeuristicKind::LowerBound,
                    HeuristicKind::Broadcast,
                    HeuristicKind::Mcph,
                ],
            )
            .unwrap();
            let scatter = report.period(HeuristicKind::Scatter).unwrap();
            let lb = report.period(HeuristicKind::LowerBound).unwrap();
            let broadcast = report.period(HeuristicKind::Broadcast).unwrap();
            let mcph = report.period(HeuristicKind::Mcph).unwrap();
            assert!(scatter.is_finite() && lb.is_finite() && mcph.is_finite());
            assert!(lb <= scatter + 1e-6, "seed {seed} density {density}");
            assert!(lb <= broadcast + 1e-6, "seed {seed} density {density}");
            assert!(mcph >= lb - 1e-6, "seed {seed} density {density}");
        }
    }
}

#[test]
fn mcph_trees_on_generated_platforms_simulate_at_their_analytical_period() {
    let mut generator = TiersLikeGenerator::reduced_scale(PlatformClass::Big, 5);
    let topology = generator.generate();
    let mut rng = StdRng::seed_from_u64(123);
    let instance = topology.sample_instance(0.5, &mut rng);
    let mcph = pm_core::heuristics::Mcph;
    let result = pm_core::heuristics::ThroughputHeuristic::run(&mcph, &instance).unwrap();
    let tree = result.tree.unwrap();
    let sim = Simulator::new(SimulationConfig {
        horizon: 400,
        warmup: 50,
        ..SimulationConfig::default()
    });
    let report = sim.run_tree_pipeline(&instance.platform, &tree, &instance.targets);
    assert!(
        (report.period - result.period).abs() <= 1e-3 * result.period.max(1.0),
        "simulated {} vs analytical {}",
        report.period,
        result.period
    );
}
