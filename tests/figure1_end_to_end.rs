//! End-to-end integration test of the paper's worked example (Section 3,
//! Figure 1), crossing every crate of the workspace: platform instance, LP
//! bounds, exact tree packing, heuristics, schedule reconstruction and
//! simulation.

use pipelined_multicast::prelude::*;
use pm_core::heuristics::{ScatterBaseline, ThroughputHeuristic};

#[test]
fn figure1_full_pipeline() {
    let instance = figure1_instance();

    // LP bounds: the optimal period is bracketed by LB = 1 and the scatter UB.
    let lb = MulticastLb::new(&instance).solve().unwrap();
    let ub = MulticastUb::new(&instance).solve().unwrap();
    assert!((lb.period - 1.0).abs() < 1e-6);
    assert!(ub.period >= lb.period);
    assert!(ub.period <= lb.period * instance.target_count() as f64 + 1e-6);

    // Exact optimum: throughput 1, not achievable by a single tree.
    let exact = ExactTreePacking::new().solve(&instance).unwrap();
    assert!((exact.throughput - 1.0).abs() < 1e-5);
    assert!(exact.best_single_tree_throughput < 1.0 - 1e-6);
    assert!(exact.tree_set.len() >= 2);

    // Every heuristic returns a period between the lower bound and scatter.
    let scatter = ScatterBaseline.run(&instance).unwrap().period;
    for heuristic in [
        &Mcph as &dyn ThroughputHeuristic,
        &ReducedBroadcast,
        &AugmentedMulticast,
        &AugmentedSources::default(),
    ] {
        let result = heuristic.run(&instance).unwrap();
        assert!(
            result.period >= lb.period - 1e-6,
            "{} beats the lower bound",
            result.name
        );
        assert!(
            result.period >= exact.period - 1e-6,
            "{} beats the exact optimum",
            result.name
        );
        assert!(
            result.period <= scatter + 1e-6,
            "{} is worse than scatter",
            result.name
        );
    }

    // The optimal weighted tree set can be turned into a valid periodic
    // schedule of period 1 and replayed without one-port violations.
    let validation = pm_sim::validate_tree_set(
        &instance.platform,
        &exact.tree_set,
        SimulationConfig {
            horizon: 64,
            warmup: 8,
            ..SimulationConfig::default()
        },
    )
    .unwrap();
    assert!((validation.throughput - 1.0).abs() < 1e-5);
    assert_eq!(validation.report.one_port_violations, 0);
    assert!((validation.report.throughput - 1.0).abs() < 1e-5);
}

#[test]
fn figure1_mcph_tree_simulates_at_its_analytical_period() {
    let instance = figure1_instance();
    let mcph = Mcph.run(&instance).unwrap();
    let tree = mcph.tree.unwrap();
    let sim = Simulator::new(SimulationConfig {
        horizon: 300,
        warmup: 40,
        ..SimulationConfig::default()
    });
    let report = sim.run_tree_pipeline(&instance.platform, &tree, &instance.targets);
    assert!(
        (report.period - mcph.period).abs() < 1e-3,
        "simulated {} vs analytical {}",
        report.period,
        mcph.period
    );
    assert_eq!(report.completed_multicasts, 300.0);
}
